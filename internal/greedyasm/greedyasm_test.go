package greedyasm

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/assembly"
	"focus/internal/dna"
	"focus/internal/eval"
)

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func tilingReads(genome []byte, l, s int) []dna.Read {
	var reads []dna.Read
	for pos := 0; pos+l <= len(genome); pos += s {
		reads = append(reads, dna.Read{ID: "t", Seq: append([]byte(nil), genome[pos:pos+l]...)})
	}
	return reads
}

func TestGreedyReconstructsCleanGenome(t *testing.T) {
	genome := randGenome(1, 4000)
	reads := tilingReads(genome, 100, 40)
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("got %d contigs, want 1", len(contigs))
	}
	// Tiling at stride 40 ends with the read at 3880, so the recoverable
	// span is genome[:3980].
	if !bytes.Equal(contigs[0], genome[:3980]) {
		t.Errorf("contig (%d bp) != tiled genome span (3980 bp)", len(contigs[0]))
	}
}

func TestGreedyDiscardsContainedReads(t *testing.T) {
	genome := randGenome(2, 1500)
	reads := tilingReads(genome, 100, 40)
	// Add reads fully contained in others.
	reads = append(reads, dna.Read{ID: "c1", Seq: append([]byte(nil), genome[210:290]...)})
	reads = append(reads, dna.Read{ID: "c2", Seq: append([]byte(nil), genome[615:685]...)})
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 || !bytes.Equal(contigs[0], genome) {
		t.Fatalf("contigs = %d (max %d bp)", len(contigs), len(contigs[0]))
	}
}

func TestGreedyHandlesGaps(t *testing.T) {
	genome := randGenome(3, 4000)
	// Two separately tiled regions: two contigs expected.
	reads := append(tilingReads(genome[:1800], 100, 40), tilingReads(genome[2200:], 100, 40)...)
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 2 {
		t.Fatalf("got %d contigs, want 2", len(contigs))
	}
}

func TestGreedyNoCycles(t *testing.T) {
	// A circular tiling (reads wrap around): greedy must terminate and
	// produce a linear contig, not loop.
	genome := randGenome(4, 1200)
	circ := append(append([]byte(nil), genome...), genome[:100]...)
	reads := tilingReads(circ, 100, 30)
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := assembly.ComputeStats(contigs)
	if st.MaxContig < len(genome) || st.MaxContig > len(circ)+100 {
		t.Errorf("max contig %d for circular genome %d", st.MaxContig, len(genome))
	}
}

func TestGreedyVsEvalOnNoisyReads(t *testing.T) {
	genome := randGenome(5, 6000)
	rng := rand.New(rand.NewSource(6))
	var reads []dna.Read
	for pos := 0; pos+100 <= len(genome); pos += 12 {
		seq := append([]byte(nil), genome[pos:pos+100]...)
		for j := range seq {
			if rng.Float64() < 0.005 {
				seq[j] = "ACGT"[rng.Intn(4)]
			}
		}
		reads = append(reads, dna.Read{ID: "n", Seq: seq})
	}
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.Evaluate(contigs, []eval.Reference{{Name: "g", Seq: genome}}, eval.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.9 {
		t.Errorf("genome fraction %.3f (%s)", rep.GenomeFraction, rep.Summary())
	}
}
