package pq

// Dense is Max specialized for dense ids in [0, n): the id->priority and
// id->position maps are replaced by flat arrays, removing per-operation
// map hashing and allocation from the partitioner's hot queues. Heap
// order matches Max exactly (greater priority first, ties to the smaller
// id), so swapping one for the other never changes results.
type Dense struct {
	ids  []int32 // heap of ids
	prio []int64 // by id; valid only while queued
	pos  []int32 // by id; -1 = absent
}

// NewDense returns an empty queue accepting ids in [0, n).
func NewDense(n int) *Dense {
	d := &Dense{prio: make([]int64, n), pos: make([]int32, n)}
	for i := range d.pos {
		d.pos[i] = -1
	}
	return d
}

// Reset empties the queue in O(len) without releasing storage.
func (q *Dense) Reset() {
	for _, id := range q.ids {
		q.pos[id] = -1
	}
	q.ids = q.ids[:0]
}

// Len returns the number of queued items.
func (q *Dense) Len() int { return len(q.ids) }

// Contains reports whether id is queued.
func (q *Dense) Contains(id int) bool { return q.pos[id] >= 0 }

// Priority returns the priority of id and whether it is queued.
func (q *Dense) Priority(id int) (int64, bool) {
	if q.pos[id] < 0 {
		return 0, false
	}
	return q.prio[id], true
}

// Push inserts id with the given priority, or updates its priority if it
// is already queued.
func (q *Dense) Push(id int, priority int64) {
	if q.pos[id] >= 0 {
		q.Update(id, priority)
		return
	}
	q.prio[id] = priority
	q.pos[id] = int32(len(q.ids))
	q.ids = append(q.ids, int32(id))
	q.up(len(q.ids) - 1)
}

// Update changes the priority of a queued id. It is a no-op for absent ids.
func (q *Dense) Update(id int, priority int64) {
	i := q.pos[id]
	if i < 0 {
		return
	}
	old := q.prio[id]
	if old == priority {
		return
	}
	q.prio[id] = priority
	if priority > old {
		q.up(int(i))
	} else {
		q.down(int(i))
	}
}

// Peek returns the id with the greatest priority without removing it.
func (q *Dense) Peek() (id int, priority int64, ok bool) {
	if len(q.ids) == 0 {
		return 0, 0, false
	}
	id = int(q.ids[0])
	return id, q.prio[id], true
}

// Pop removes and returns the id with the greatest priority.
func (q *Dense) Pop() (id int, priority int64, ok bool) {
	if len(q.ids) == 0 {
		return 0, 0, false
	}
	id = int(q.ids[0])
	priority = q.prio[id]
	q.removeAt(0)
	return id, priority, true
}

// Remove deletes id from the queue if present, reporting whether it was.
func (q *Dense) Remove(id int) bool {
	i := q.pos[id]
	if i < 0 {
		return false
	}
	q.removeAt(int(i))
	return true
}

func (q *Dense) removeAt(i int) {
	id := q.ids[i]
	last := len(q.ids) - 1
	q.swap(i, last)
	q.ids = q.ids[:last]
	q.pos[id] = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
}

// less orders heap slots: greater priority first, then smaller id.
func (q *Dense) less(i, j int) bool {
	a, b := q.ids[i], q.ids[j]
	pa, pb := q.prio[a], q.prio[b]
	if pa != pb {
		return pa > pb
	}
	return a < b
}

func (q *Dense) swap(i, j int) {
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
	q.pos[q.ids[i]] = int32(i)
	q.pos[q.ids[j]] = int32(j)
}

func (q *Dense) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Dense) down(i int) {
	n := len(q.ids)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.swap(i, best)
		i = best
	}
}
