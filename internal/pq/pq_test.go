package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := NewMax(0)
	if q.Len() != 0 {
		t.Errorf("Len = %d", q.Len())
	}
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue ok")
	}
	if q.Remove(3) {
		t.Error("Remove on empty queue true")
	}
}

func TestPushPopOrder(t *testing.T) {
	q := NewMax(4)
	q.Push(1, 10)
	q.Push(2, 30)
	q.Push(3, 20)
	var got []int
	for q.Len() > 0 {
		id, _, _ := q.Pop()
		got = append(got, id)
	}
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestTieBreakById(t *testing.T) {
	q := NewMax(4)
	q.Push(9, 5)
	q.Push(2, 5)
	q.Push(7, 5)
	var got []int
	for q.Len() > 0 {
		id, _, _ := q.Pop()
		got = append(got, id)
	}
	want := []int{2, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestUpdate(t *testing.T) {
	q := NewMax(4)
	q.Push(1, 10)
	q.Push(2, 20)
	q.Update(1, 30)
	if id, p, _ := q.Peek(); id != 1 || p != 30 {
		t.Errorf("after raising: peek = (%d,%d)", id, p)
	}
	q.Update(1, 5)
	if id, _, _ := q.Peek(); id != 2 {
		t.Errorf("after lowering: peek id = %d, want 2", id)
	}
	q.Update(99, 1) // absent: no-op
	if q.Len() != 2 {
		t.Errorf("Len after no-op update = %d", q.Len())
	}
}

func TestPushExistingUpdates(t *testing.T) {
	q := NewMax(2)
	q.Push(1, 10)
	q.Push(1, 99)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if p, _ := q.Priority(1); p != 99 {
		t.Errorf("Priority = %d, want 99", p)
	}
}

func TestRemove(t *testing.T) {
	q := NewMax(4)
	for i := 0; i < 10; i++ {
		q.Push(i, int64(i))
	}
	if !q.Remove(9) || !q.Remove(0) || !q.Remove(5) {
		t.Fatal("Remove returned false for present id")
	}
	if q.Remove(5) {
		t.Fatal("Remove returned true for absent id")
	}
	if q.Contains(5) || !q.Contains(4) {
		t.Fatal("Contains wrong after Remove")
	}
	var got []int
	for q.Len() > 0 {
		id, _, _ := q.Pop()
		got = append(got, id)
	}
	want := []int{8, 7, 6, 4, 3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestAgainstReference drives the queue with random operations and compares
// against a brute-force reference implementation.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewMax(16)
	ref := map[int]int64{}
	refMax := func() (int, int64, bool) {
		best, bestP, ok := 0, int64(0), false
		for id, p := range ref {
			if !ok || p > bestP || (p == bestP && id < best) {
				best, bestP, ok = id, p, true
			}
		}
		return best, bestP, ok
	}
	for op := 0; op < 5000; op++ {
		id := rng.Intn(40)
		switch rng.Intn(4) {
		case 0:
			p := int64(rng.Intn(100) - 50)
			q.Push(id, p)
			ref[id] = p
		case 1:
			if _, ok := ref[id]; ok {
				p := int64(rng.Intn(100) - 50)
				q.Update(id, p)
				ref[id] = p
			}
		case 2:
			got := q.Remove(id)
			_, want := ref[id]
			if got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", op, id, got, want)
			}
			delete(ref, id)
		case 3:
			gid, gp, gok := q.Pop()
			wid, wp, wok := refMax()
			if gok != wok || (gok && (gid != wid || gp != wp)) {
				t.Fatalf("op %d: Pop = (%d,%d,%v), want (%d,%d,%v)", op, gid, gp, gok, wid, wp, wok)
			}
			delete(ref, wid)
		}
		if q.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, q.Len(), len(ref))
		}
	}
}

// TestHeapDrainSorted: popping everything yields non-increasing priorities.
func TestHeapDrainSorted(t *testing.T) {
	f := func(prios []int64) bool {
		q := NewMax(len(prios))
		for i, p := range prios {
			q.Push(i, p)
		}
		var got []int64
		for q.Len() > 0 {
			_, p, _ := q.Pop()
			got = append(got, p)
		}
		if len(got) != len(prios) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] > got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
