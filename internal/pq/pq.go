// Package pq implements an indexed, updatable max-priority queue keyed by
// dense integer ids. It backs the gain queues of the greedy graph growing
// algorithm and the D-value queues of the Kernighan–Lin refinement pass
// (paper §IV.A–B), both of which need O(log n) priority updates addressed
// by node id.
package pq

// Max is an indexed max-heap: each item is identified by a non-negative
// integer id and carries an int64 priority. Ties are broken by smaller id
// so heap order is deterministic for a given insertion set.
type Max struct {
	ids  []int         // heap of ids
	prio map[int]int64 // id -> priority
	pos  map[int]int   // id -> index in ids
}

// NewMax returns an empty queue with capacity hint n.
func NewMax(n int) *Max {
	return &Max{
		ids:  make([]int, 0, n),
		prio: make(map[int]int64, n),
		pos:  make(map[int]int, n),
	}
}

// Len returns the number of queued items.
func (q *Max) Len() int { return len(q.ids) }

// Contains reports whether id is queued.
func (q *Max) Contains(id int) bool {
	_, ok := q.pos[id]
	return ok
}

// Priority returns the priority of id and whether it is queued.
func (q *Max) Priority(id int) (int64, bool) {
	p, ok := q.prio[id]
	return p, ok
}

// Push inserts id with the given priority, or updates its priority if it is
// already queued.
func (q *Max) Push(id int, priority int64) {
	if _, ok := q.pos[id]; ok {
		q.Update(id, priority)
		return
	}
	q.prio[id] = priority
	q.pos[id] = len(q.ids)
	q.ids = append(q.ids, id)
	q.up(len(q.ids) - 1)
}

// Update changes the priority of a queued id. It is a no-op for absent ids.
func (q *Max) Update(id int, priority int64) {
	i, ok := q.pos[id]
	if !ok {
		return
	}
	old := q.prio[id]
	if old == priority {
		return
	}
	q.prio[id] = priority
	if priority > old {
		q.up(i)
	} else {
		q.down(i)
	}
}

// Peek returns the id with the greatest priority without removing it.
// ok is false when the queue is empty.
func (q *Max) Peek() (id int, priority int64, ok bool) {
	if len(q.ids) == 0 {
		return 0, 0, false
	}
	id = q.ids[0]
	return id, q.prio[id], true
}

// Pop removes and returns the id with the greatest priority.
func (q *Max) Pop() (id int, priority int64, ok bool) {
	if len(q.ids) == 0 {
		return 0, 0, false
	}
	id = q.ids[0]
	priority = q.prio[id]
	q.removeAt(0)
	return id, priority, true
}

// Remove deletes id from the queue if present, reporting whether it was.
func (q *Max) Remove(id int) bool {
	i, ok := q.pos[id]
	if !ok {
		return false
	}
	q.removeAt(i)
	return true
}

func (q *Max) removeAt(i int) {
	id := q.ids[i]
	last := len(q.ids) - 1
	q.swap(i, last)
	q.ids = q.ids[:last]
	delete(q.pos, id)
	delete(q.prio, id)
	if i < last {
		q.down(i)
		q.up(i)
	}
}

// less orders heap slots: greater priority first, then smaller id.
func (q *Max) less(i, j int) bool {
	a, b := q.ids[i], q.ids[j]
	pa, pb := q.prio[a], q.prio[b]
	if pa != pb {
		return pa > pb
	}
	return a < b
}

func (q *Max) swap(i, j int) {
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
	q.pos[q.ids[i]] = i
	q.pos[q.ids[j]] = j
}

func (q *Max) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Max) down(i int) {
	n := len(q.ids)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.swap(i, best)
		i = best
	}
}
