package pq

import (
	"math/rand"
	"testing"
)

// TestDenseMirrorsMax drives Dense and Max with the same random operation
// sequence and demands identical observable behaviour, including pop
// order (both break ties to the smaller id).
func TestDenseMirrorsMax(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		d := NewDense(n)
		m := NewMax(n)
		for op := 0; op < 2000; op++ {
			id := rng.Intn(n)
			switch rng.Intn(5) {
			case 0, 1:
				p := int64(rng.Intn(40) - 20)
				d.Push(id, p)
				m.Push(id, p)
			case 2:
				p := int64(rng.Intn(40) - 20)
				d.Update(id, p)
				m.Update(id, p)
			case 3:
				if d.Remove(id) != m.Remove(id) {
					t.Fatalf("seed %d op %d: Remove(%d) diverged", seed, op, id)
				}
			case 4:
				di, dp, dok := d.Pop()
				mi, mp, mok := m.Pop()
				if di != mi || dp != mp || dok != mok {
					t.Fatalf("seed %d op %d: Pop = (%d,%d,%v) vs (%d,%d,%v)", seed, op, di, dp, dok, mi, mp, mok)
				}
			}
			if d.Len() != m.Len() {
				t.Fatalf("seed %d op %d: Len %d vs %d", seed, op, d.Len(), m.Len())
			}
			if d.Contains(id) != m.Contains(id) {
				t.Fatalf("seed %d op %d: Contains(%d) diverged", seed, op, id)
			}
			dp, dok := d.Priority(id)
			mp, mok := m.Priority(id)
			if dp != mp || dok != mok {
				t.Fatalf("seed %d op %d: Priority(%d) diverged", seed, op, id)
			}
		}
		// Drain fully: pop order must match.
		for d.Len() > 0 {
			di, dp, _ := d.Pop()
			mi, mp, _ := m.Pop()
			if di != mi || dp != mp {
				t.Fatalf("seed %d drain: (%d,%d) vs (%d,%d)", seed, di, dp, mi, mp)
			}
		}
		if m.Len() != 0 {
			t.Fatalf("seed %d: Max not drained", seed)
		}
	}
}

func TestDenseReset(t *testing.T) {
	d := NewDense(8)
	for i := 0; i < 8; i++ {
		d.Push(i, int64(i))
	}
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("Len after Reset = %d", d.Len())
	}
	for i := 0; i < 8; i++ {
		if d.Contains(i) {
			t.Fatalf("id %d still queued after Reset", i)
		}
	}
	d.Push(3, 7)
	if id, p, ok := d.Pop(); !ok || id != 3 || p != 7 {
		t.Fatalf("Pop after Reset = (%d,%d,%v)", id, p, ok)
	}
}
