package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSpeedup(t *testing.T) {
	times := []time.Duration{100 * time.Millisecond, 50 * time.Millisecond, 25 * time.Millisecond}
	s := Speedup(times)
	if s[0] != 1 || s[1] != 2 || s[2] != 4 {
		t.Errorf("speedup = %v", s)
	}
	if out := Speedup(nil); len(out) != 0 {
		t.Errorf("empty speedup = %v", out)
	}
	if out := Speedup([]time.Duration{0, 10}); out[0] != 0 || out[1] != 0 {
		t.Errorf("zero-base speedup = %v", out)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if tm.Elapsed() < 0 {
		t.Error("negative elapsed")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("x", 1)
	tbl.AddRow("longer", 2.5)
	tbl.AddRow("d", 3*time.Millisecond)
	out := tbl.String()
	if !strings.Contains(out, "T\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "longer") || !strings.Contains(out, "2.500") {
		t.Errorf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "3ms") {
		t.Errorf("missing duration cell:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + sep + 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestHeatmap(t *testing.T) {
	var b strings.Builder
	Heatmap(&b, "H", []string{"g1", "g2"}, [][]float64{{0, 1}, {0.5, 0.25}})
	out := b.String()
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Errorf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Errorf("missing full-intensity glyph:\n%s", out)
	}
	// Out-of-range values are clamped, not panicking.
	Heatmap(&b, "", []string{"x"}, [][]float64{{-1, 2}})
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	Series(&b, "S", "procs", "speedup", []string{"1", "2"}, []float64{1, 2}, 0)
	out := b.String()
	if !strings.Contains(out, "S\n") || !strings.Contains(out, "speedup") {
		t.Errorf("series output:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("unexpected line count:\n%s", out)
	}
}
