package metrics

import (
	"sync"
	"time"
)

// CostModel estimates the relative cost of named pipeline phases so a
// run-wide deadline can be split into per-phase budgets. Each phase keeps
// an exponentially-weighted moving average of its observed durations;
// until a phase has been observed at least once, its caller-supplied
// prior weight stands in. Weights are relative — only ratios matter when
// splitting a deadline — so priors and observations mix freely: a phase
// with observations contributes its EWMA in seconds, one without
// contributes prior × (mean observed seconds per prior unit), falling
// back to the raw prior when nothing has been observed yet.
type CostModel struct {
	mu     sync.Mutex
	alpha  float64
	priors map[string]float64
	ewma   map[string]float64 // seconds
}

// NewCostModel builds a model from prior weights (arbitrary positive
// units, e.g. {"Transitive": 3, "Paths": 1}). Phases missing from priors
// default to weight 1. alpha is the EWMA smoothing factor in (0,1]; 0
// selects the default 0.5 (recent runs dominate — assembly phase costs
// shift with graph size, not history).
func NewCostModel(priors map[string]float64, alpha float64) *CostModel {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	p := make(map[string]float64, len(priors))
	for k, v := range priors {
		if v > 0 {
			p[k] = v
		}
	}
	return &CostModel{alpha: alpha, priors: p, ewma: make(map[string]float64)}
}

// Observe feeds one measured phase duration into the model.
func (m *CostModel) Observe(phase string, d time.Duration) {
	if m == nil || d < 0 {
		return
	}
	s := d.Seconds()
	m.mu.Lock()
	if prev, ok := m.ewma[phase]; ok {
		m.ewma[phase] = m.alpha*s + (1-m.alpha)*prev
	} else {
		m.ewma[phase] = s
	}
	m.mu.Unlock()
}

// Weight returns the phase's current relative cost: its EWMA if observed,
// otherwise its prior scaled to the observed phases' unit cost (so a
// never-observed phase with prior 3 is budgeted like three average prior
// units of measured work, not three seconds).
func (m *CostModel) Weight(phase string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.weightLocked(phase)
}

func (m *CostModel) weightLocked(phase string) float64 {
	if s, ok := m.ewma[phase]; ok {
		return s
	}
	prior := m.priors[phase]
	if prior <= 0 {
		prior = 1
	}
	return prior * m.secondsPerUnitLocked()
}

// secondsPerUnitLocked estimates how many measured seconds one prior unit
// is worth, from the phases that have both a prior and observations.
// With no observations at all it returns 1: budgets then split purely by
// prior ratio, which is all that matters.
func (m *CostModel) secondsPerUnitLocked() float64 {
	var sumSec, sumUnits float64
	for phase, s := range m.ewma {
		prior := m.priors[phase]
		if prior <= 0 {
			prior = 1
		}
		sumSec += s
		sumUnits += prior
	}
	if sumUnits == 0 || sumSec == 0 {
		return 1
	}
	return sumSec / sumUnits
}

// Split divides a remaining time budget across the named phases in
// proportion to their weights. The shares sum to remaining (modulo
// rounding); a non-positive remaining yields all-zero shares.
func (m *CostModel) Split(remaining time.Duration, phases []string) []time.Duration {
	out := make([]time.Duration, len(phases))
	if m == nil || remaining <= 0 || len(phases) == 0 {
		return out
	}
	m.mu.Lock()
	weights := make([]float64, len(phases))
	var total float64
	for i, ph := range phases {
		weights[i] = m.weightLocked(ph)
		total += weights[i]
	}
	m.mu.Unlock()
	if total <= 0 {
		// Degenerate: split evenly.
		for i := range out {
			out[i] = remaining / time.Duration(len(phases))
		}
		return out
	}
	for i := range out {
		out[i] = time.Duration(float64(remaining) * weights[i] / total)
	}
	return out
}
