package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the operational metrics surface of the resident master
// (DESIGN.md §16): named counters, gauges and latency histograms, all
// lock-free on the hot path and snapshotable as plain JSON for the
// server's /metrics endpoint — and for the chaos tests, which scrape the
// snapshot as assertions rather than trusting logs.
//
// Every accessor is nil-safe on both the registry and the returned
// instrument: code paths instrumented with an optional registry pay a
// nil check, nothing more, when metrics are off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named monotonic counter, creating it on first use.
// Nil receiver returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil receiver
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use. Nil receiver returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (nil-safe).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (nil-safe).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level (queue depth, running jobs, ...).
type Gauge struct{ v atomic.Int64 }

// Set stores v (nil-safe).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (nil-safe).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the histogram bucket upper bounds: a coarse exponential
// ladder from 1ms to 1min. Observations above the last bound land in the
// overflow bucket.
var histBounds = [...]time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second,
	10 * time.Second, 30 * time.Second, time.Minute,
}

// Histogram accumulates durations into fixed exponential buckets plus a
// count and sum; all atomics, no locking on Observe.
type Histogram struct {
	buckets [len(histBounds) + 1]atomic.Int64 // +1: overflow
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration (nil-safe; negative observations are
// dropped).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	i := sort.Search(len(histBounds), func(i int) bool { return d <= histBounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// BucketCount is one non-empty histogram bucket: the count of
// observations at or below UpperSeconds (and above the previous bound).
// UpperSeconds <= 0 marks the overflow bucket.
type BucketCount struct {
	UpperSeconds float64 `json:"le_seconds"`
	Count        int64   `json:"count"`
}

// HistogramSnapshot is a histogram's point-in-time state.
type HistogramSnapshot struct {
	Count      int64         `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
	Buckets    []BucketCount `json:"buckets,omitempty"` // non-empty buckets only
}

// Snapshot is a registry's full point-in-time state, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value. Nil receiver
// returns an empty (non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), SumSeconds: h.Sum().Seconds()}
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			b := BucketCount{Count: n}
			if i < len(histBounds) {
				b.UpperSeconds = histBounds[i].Seconds()
			}
			hs.Buckets = append(hs.Buckets, b)
		}
		snap.Histograms[name] = hs
	}
	return snap
}
