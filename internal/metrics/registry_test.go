package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// Nil registries and nil instruments are silent no-ops: optional
// instrumentation must not require nil checks at every call site.
func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(time.Second)
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
	snap := r.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Fatal("nil registry snapshot has nil maps")
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("evictions").Add(2)
	r.Counter("evictions").Inc()
	r.Gauge("depth").Set(7)
	r.Gauge("depth").Add(-3)
	r.Histogram("lat").Observe(3 * time.Millisecond)
	r.Histogram("lat").Observe(2 * time.Hour) // overflow bucket
	r.Histogram("lat").Observe(-time.Second)  // dropped

	snap := r.Snapshot()
	if snap.Counters["evictions"] != 3 {
		t.Fatalf("counter = %d, want 3", snap.Counters["evictions"])
	}
	if snap.Gauges["depth"] != 4 {
		t.Fatalf("gauge = %d, want 4", snap.Gauges["depth"])
	}
	h := snap.Histograms["lat"]
	if h.Count != 2 {
		t.Fatalf("histogram count = %d, want 2", h.Count)
	}
	var overflow, bounded int64
	for _, b := range h.Buckets {
		if b.UpperSeconds <= 0 {
			overflow += b.Count
		} else {
			bounded += b.Count
		}
	}
	if overflow != 1 || bounded != 1 {
		t.Fatalf("bucket split overflow=%d bounded=%d, want 1/1", overflow, bounded)
	}
	// The snapshot is the /metrics document: it must be JSON-encodable.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

// Concurrent updates and snapshots must be race-free (this test is run
// under -race by scripts/race.sh).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(n) * time.Millisecond)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("h").Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}
