package metrics

import (
	"testing"
	"time"
)

func testPriors() map[string]float64 {
	return map[string]float64{"A": 3, "B": 1}
}

// Split edge cases: a nil model, a non-positive remaining budget, and an
// empty phase list must all yield all-zero shares, never panic or return
// a short slice.
func TestSplitEdgeCases(t *testing.T) {
	m := NewCostModel(testPriors(), 0)

	var nilModel *CostModel
	shares := nilModel.Split(time.Second, []string{"A", "B"})
	if len(shares) != 2 || shares[0] != 0 || shares[1] != 0 {
		t.Fatalf("nil model: got %v, want two zero shares", shares)
	}

	for _, remaining := range []time.Duration{0, -time.Second} {
		shares := m.Split(remaining, []string{"A", "B"})
		if len(shares) != 2 {
			t.Fatalf("remaining=%v: %d shares for 2 phases", remaining, len(shares))
		}
		for i, s := range shares {
			if s != 0 {
				t.Fatalf("remaining=%v: share[%d]=%v, want 0", remaining, i, s)
			}
		}
	}

	if shares := m.Split(time.Second, nil); len(shares) != 0 {
		t.Fatalf("empty phases: got %v, want empty", shares)
	}
}

// Unknown phase names get weight 1, not zero: a model must never starve a
// phase it has no prior for.
func TestSplitUnknownPhases(t *testing.T) {
	m := NewCostModel(testPriors(), 0)
	shares := m.Split(time.Second, []string{"Mystery", "AlsoMystery"})
	if len(shares) != 2 {
		t.Fatalf("%d shares for 2 phases", len(shares))
	}
	for i, s := range shares {
		if s != 500*time.Millisecond {
			t.Fatalf("unknown phases should split evenly: share[%d]=%v", i, s)
		}
	}
}

// All-zero (and negative) priors are dropped at construction, so every
// phase falls back to weight 1 and the budget splits evenly instead of
// dividing by a zero total.
func TestSplitAllZeroPriors(t *testing.T) {
	m := NewCostModel(map[string]float64{"A": 0, "B": -5}, 0)
	shares := m.Split(2*time.Second, []string{"A", "B"})
	if len(shares) != 2 {
		t.Fatalf("%d shares for 2 phases", len(shares))
	}
	if shares[0] != time.Second || shares[1] != time.Second {
		t.Fatalf("all-zero priors should split evenly: got %v", shares)
	}
}

// Priors weight the split before any observation, and shares sum to the
// remaining budget (within rounding).
func TestSplitPriorWeights(t *testing.T) {
	m := NewCostModel(testPriors(), 0)
	shares := m.Split(4*time.Second, []string{"A", "B"})
	if shares[0] != 3*time.Second || shares[1] != time.Second {
		t.Fatalf("3:1 priors over 4s: got %v", shares)
	}
	var sum time.Duration
	for _, s := range shares {
		sum += s
	}
	if diff := sum - 4*time.Second; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("shares sum to %v, want ~4s", sum)
	}
}

// Observations dominate priors once present; negative observations are
// dropped (a clock step must not poison the model).
func TestObserveUpdatesWeights(t *testing.T) {
	m := NewCostModel(testPriors(), 0)
	m.Observe("A", -time.Second) // dropped
	shares := m.Split(4*time.Second, []string{"A", "B"})
	if shares[0] != 3*time.Second {
		t.Fatalf("negative observation changed the split: %v", shares)
	}
	// Teach the model that A and B cost the same: the 3:1 prior gives way.
	for i := 0; i < 8; i++ {
		m.Observe("A", 100*time.Millisecond)
		m.Observe("B", 100*time.Millisecond)
	}
	shares = m.Split(4*time.Second, []string{"A", "B"})
	if shares[0] != 2*time.Second || shares[1] != 2*time.Second {
		t.Fatalf("equal observations should split evenly: got %v", shares)
	}
	// Nil-safe Observe.
	var nilModel *CostModel
	nilModel.Observe("A", time.Second)
}
