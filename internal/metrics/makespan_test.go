package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func d(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

func TestMakespanBasics(t *testing.T) {
	if Makespan(nil, 4) != 0 {
		t.Error("empty tasks nonzero")
	}
	tasks := []time.Duration{d(10), d(20), d(30)}
	if got := Makespan(tasks, 1); got != d(60) {
		t.Errorf("1 worker: %v", got)
	}
	// LPT on 2 workers: 30 | 20+10 -> 30.
	if got := Makespan(tasks, 2); got != d(30) {
		t.Errorf("2 workers: %v", got)
	}
	// More workers than tasks: the longest task.
	if got := Makespan(tasks, 10); got != d(30) {
		t.Errorf("10 workers: %v", got)
	}
	// workers < 1 behaves like 1.
	if got := Makespan(tasks, 0); got != d(60) {
		t.Errorf("0 workers: %v", got)
	}
}

func TestMakespanClassicLPT(t *testing.T) {
	// LPT on {7,7,6,6,5,4} with 3 workers: 7+4 | 7+5 | 6+6 -> 12.
	tasks := []time.Duration{d(7), d(7), d(6), d(6), d(5), d(4)}
	if got := Makespan(tasks, 3); got != d(12) {
		t.Errorf("got %v, want 12ms", got)
	}
}

func TestMakespanDoesNotMutateInput(t *testing.T) {
	tasks := []time.Duration{d(1), d(3), d(2)}
	Makespan(tasks, 2)
	if tasks[0] != d(1) || tasks[1] != d(3) || tasks[2] != d(2) {
		t.Errorf("input mutated: %v", tasks)
	}
}

// Properties: makespan is monotone in worker count, bounded below by both
// max(task) and sum/workers, and bounded above by the serial sum.
func TestMakespanQuick(t *testing.T) {
	f := func(raw []uint16, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := int(wRaw)%16 + 1
		tasks := make([]time.Duration, len(raw))
		var sum, max time.Duration
		for i, r := range raw {
			tasks[i] = time.Duration(r) * time.Microsecond
			sum += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		ms := Makespan(tasks, w)
		if ms < max || ms > sum {
			return false
		}
		if ms < sum/time.Duration(w) {
			return false
		}
		return Makespan(tasks, w+1) <= ms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMakespanRandomAgainstBruteForce(t *testing.T) {
	// For 2 workers and few tasks, compare LPT against the optimum; LPT
	// is within 7/6 of optimal (Graham's bound).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		tasks := make([]time.Duration, n)
		var sum time.Duration
		for i := range tasks {
			tasks[i] = time.Duration(1+rng.Intn(50)) * time.Millisecond
			sum += tasks[i]
		}
		// Brute-force optimum for 2 machines via subset enumeration.
		best := sum
		for mask := 0; mask < 1<<n; mask++ {
			var a time.Duration
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					a += tasks[i]
				}
			}
			b := sum - a
			m := a
			if b > m {
				m = b
			}
			if m < best {
				best = m
			}
		}
		got := Makespan(tasks, 2)
		if got < best {
			t.Fatalf("makespan %v below optimum %v", got, best)
		}
		if float64(got) > float64(best)*7.0/6.0+1 {
			t.Fatalf("LPT bound violated: %v vs optimum %v", got, best)
		}
	}
}
