// Package metrics provides the timing, table and heat-map rendering
// helpers the benchmark harness uses to print the paper's tables and
// figures as text.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Timer measures wall-clock durations of named stages.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t *Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Speedup converts a series of durations into speedups relative to the
// first entry: out[i] = times[0] / times[i].
func Speedup(times []time.Duration) []float64 {
	out := make([]float64, len(times))
	if len(times) == 0 || times[0] <= 0 {
		return out
	}
	for i, d := range times {
		if d > 0 {
			out[i] = float64(times[0]) / float64(d)
		}
	}
	return out
}

// Makespan computes the completion time of scheduling the given task
// durations on `workers` identical processors with LPT (longest
// processing time first) list scheduling. The benchmark harness uses it
// to project measured per-partition task times onto the paper's
// multi-processor cluster when the host has fewer cores (see DESIGN.md
// §2: hardware substitution).
func Makespan(tasks []time.Duration, workers int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	sorted := append([]time.Duration(nil), tasks...)
	for i := 1; i < len(sorted); i++ { // insertion sort, descending
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	load := make([]time.Duration, workers)
	for _, t := range sorted {
		min := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[min] {
				min = w
			}
		}
		load[min] += t
	}
	max := load[0]
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// Table renders aligned text tables for the harness output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (fmt.Sprint applied to each value).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// heatChars maps intensity [0,1] to a glyph ramp.
var heatChars = []rune(" .:-=+*#%@")

// Heatmap renders a labeled fraction matrix (rows x cols in [0,1]) as a
// text heat map — the harness's rendering of the paper's Fig. 7.
func Heatmap(w io.Writer, title string, rowLabels []string, frac [][]float64) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	maxLabel := 0
	for _, l := range rowLabels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	cols := 0
	if len(frac) > 0 {
		cols = len(frac[0])
	}
	fmt.Fprintf(w, "  %-*s ", maxLabel, "")
	for p := 0; p < cols; p++ {
		fmt.Fprintf(w, "%2d", p+1)
	}
	fmt.Fprintln(w)
	for r, row := range frac {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(w, "  %-*s ", maxLabel, label)
		for _, f := range row {
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			idx := int(f * float64(len(heatChars)-1))
			fmt.Fprintf(w, " %c", heatChars[idx])
		}
		fmt.Fprintln(w)
	}
}

// Series renders an x/y series as "x: y (bar)" lines — the harness's
// rendering of the paper's line and bar charts (Figs. 4-6).
func Series(w io.Writer, title, xName, yName string, xs []string, ys []float64, yMax float64) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	if yMax <= 0 {
		for _, y := range ys {
			if y > yMax {
				yMax = y
			}
		}
	}
	const barWidth = 40
	for i := range xs {
		n := 0
		if yMax > 0 {
			n = int(ys[i] / yMax * barWidth)
		}
		if n < 0 {
			n = 0
		}
		if n > barWidth {
			n = barWidth
		}
		fmt.Fprintf(w, "  %-10s %10.3f %s |%s\n", xs[i], ys[i], yName, strings.Repeat("#", n))
	}
	_ = xName
}
