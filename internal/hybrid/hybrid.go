// Package hybrid builds the hybrid graph set G' = {G'0 … G'n} of paper
// §II.D and §III. A best representative node is a node selected from the
// most reduced multilevel graph possible whose read cluster assembles into
// one contiguous contig; the hybrid graph G'0 contains all best
// representatives. Partitioning G'0's set instead of the full multilevel
// set is the paper's mechanism for injecting the linearity of DNA into the
// partitioner.
package hybrid

import (
	"fmt"
	"sort"

	"focus/internal/dna"
	"focus/internal/graph"
	"focus/internal/overlap"
)

// Node is one hybrid-graph node: a best-representative read cluster.
type Node struct {
	// Level is the multilevel graph level the representative was selected
	// from (0 = a single read).
	Level int
	// Members are the overlap-graph (G0) node ids in the cluster.
	Members []int
	// Contig is the consensus sequence assembled from the cluster layout.
	Contig []byte
	// Offsets[i] is the layout position of Members[i] within Contig.
	Offsets []int
}

// Hybrid is the hybrid graph plus its coarsening set and provenance.
type Hybrid struct {
	Nodes []Node
	// RepOf maps each G0 node to its hybrid node index.
	RepOf []int
	// G is the hybrid graph G'0 (undirected, edge weights = summed
	// crossing overlap lengths), the graph the distributed assembly
	// algorithms run on.
	G *graph.Graph
	// Set is the hybrid graph set {G'0 … G'n} used for partitioning.
	Set *graph.Set
}

// Config controls linearity testing.
type Config struct {
	// PosTolerance is the max disagreement (bases) between two layout
	// position estimates of the same read before the cluster is declared
	// non-linear (e.g. collapsed repeats).
	PosTolerance int
	// RequireOverlap guards against chimeric layouts across exact repeat
	// copies: any two cluster reads whose layout implies an overlap of at
	// least this many bases must be connected by an actual overlap
	// record, otherwise the cluster is rejected. Slightly above the
	// overlap acceptance threshold so sparse seed sampling does not cause
	// spurious rejections.
	RequireOverlap int
}

// DefaultConfig returns the default linearity tolerances.
func DefaultConfig() Config { return Config{PosTolerance: 5, RequireOverlap: 65} }

// Build selects best representatives top-down through the multilevel set
// and assembles the hybrid graph set. reads are the preprocessed reads
// backing G0 (= mset.Levels[0]); recs are the overlap records.
func Build(mset *graph.Set, reads []dna.Read, recs []overlap.Record, cfg Config) (*Hybrid, error) {
	if err := mset.Validate(); err != nil {
		return nil, err
	}
	g0 := mset.Levels[0]
	if g0.NumNodes() != len(reads) {
		return nil, fmt.Errorf("hybrid: %d reads for %d graph nodes", len(reads), g0.NumNodes())
	}
	if cfg.PosTolerance <= 0 {
		cfg.PosTolerance = DefaultConfig().PosTolerance
	}
	if cfg.RequireOverlap <= 0 {
		cfg.RequireOverlap = DefaultConfig().RequireOverlap
	}

	// Incidence of overlap records per G0 node.
	inc := make([][]int32, len(reads))
	for ri, r := range recs {
		inc[r.A] = append(inc[r.A], int32(ri))
		inc[r.B] = append(inc[r.B], int32(ri))
	}

	// assign[v] = current node of level L containing G0 node v.
	n0 := g0.NumNodes()
	levels := len(mset.Levels)
	// Cumulative assignment per level.
	assignAt := make([][]int, levels)
	assignAt[0] = make([]int, n0)
	for v := range assignAt[0] {
		assignAt[0][v] = v
	}
	for i := 1; i < levels; i++ {
		assignAt[i] = make([]int, n0)
		for v := 0; v < n0; v++ {
			assignAt[i][v] = mset.Up[i-1][assignAt[i-1][v]]
		}
	}

	h := &Hybrid{RepOf: make([]int, n0)}
	for v := range h.RepOf {
		h.RepOf[v] = -1
	}

	// Top-down selection: coarsest level first.
	scratch := newLayoutScratch(n0, reads, recs, inc, cfg)
	for level := levels - 1; level >= 0; level-- {
		clusters := clustersAt(assignAt[level], mset.Levels[level].NumNodes())
		for _, members := range clusters {
			if len(members) == 0 {
				continue
			}
			if h.RepOf[members[0]] != -1 {
				continue // already covered by a higher-level representative
			}
			node, ok := scratch.tryLayout(members, level)
			if !ok {
				continue // not linear; descend to children
			}
			id := len(h.Nodes)
			h.Nodes = append(h.Nodes, node)
			for _, m := range members {
				h.RepOf[m] = id
			}
		}
	}
	// Level-0 singletons are always linear, so everything is covered.
	for v, r := range h.RepOf {
		if r == -1 {
			return nil, fmt.Errorf("hybrid: node %d uncovered (internal error)", v)
		}
	}

	// Hybrid graph G'0: contract G0 by RepOf.
	b := graph.NewBuilder(len(h.Nodes))
	for i, n := range h.Nodes {
		b.SetNodeWeight(i, int64(len(n.Members)))
	}
	for v := 0; v < n0; v++ {
		for _, a := range g0.Adj(v) {
			if a.To <= v {
				continue
			}
			if h.RepOf[v] != h.RepOf[a.To] {
				_ = b.AddEdge(h.RepOf[v], h.RepOf[a.To], a.W)
			}
		}
	}
	h.G = b.Build()

	// Hybrid graph set: at level i, nodes of Gi whose cluster belongs to a
	// representative chosen at level >= i collapse into that
	// representative; the rest stay as themselves (paper Fig. 1B).
	set, err := buildHybridSet(mset, assignAt, h)
	if err != nil {
		return nil, err
	}
	h.Set = set
	return h, nil
}

// clustersAt groups G0 node ids by their node at some level.
func clustersAt(assign []int, numNodes int) [][]int {
	out := make([][]int, numNodes)
	for v, c := range assign {
		out[c] = append(out[c], v)
	}
	return out
}

// buildHybridSet contracts every multilevel level by the representative
// assignment to produce the hybrid set and its up-maps.
func buildHybridSet(mset *graph.Set, assignAt [][]int, h *Hybrid) (*graph.Set, error) {
	levels := len(mset.Levels)
	set := &graph.Set{}
	// groupOf[i][v] = hybrid-set node of level-i node v; sizes[i] = count.
	groupOf := make([][]int, levels)
	for i := 0; i < levels; i++ {
		gi := mset.Levels[i]
		// First member of each level-i node.
		first := make([]int, gi.NumNodes())
		for v := range first {
			first[v] = -1
		}
		for v0, c := range assignAt[i] {
			if first[c] == -1 {
				first[c] = v0
			}
		}
		group := make([]int, gi.NumNodes())
		// Slot layout: representatives first (in rep-id order, so that
		// level 0 of the hybrid set uses exactly the hybrid node ids),
		// then the surviving plain level-i nodes in id order.
		repPresent := map[int]bool{}
		repFor := make([]int, gi.NumNodes()) // rep id, or -1 for plain
		for v := 0; v < gi.NumNodes(); v++ {
			m := first[v]
			if m == -1 {
				return nil, fmt.Errorf("hybrid: level %d node %d has no members", i, v)
			}
			r := h.RepOf[m]
			if h.Nodes[r].Level >= i {
				repFor[v] = r
				repPresent[r] = true
			} else {
				repFor[v] = -1
			}
		}
		repIDs := make([]int, 0, len(repPresent))
		for r := range repPresent {
			repIDs = append(repIDs, r)
		}
		sort.Ints(repIDs)
		repSlot := make(map[int]int, len(repIDs))
		for slot, r := range repIDs {
			repSlot[r] = slot
		}
		next := len(repIDs)
		for v := 0; v < gi.NumNodes(); v++ {
			if r := repFor[v]; r != -1 {
				group[v] = repSlot[r]
			} else {
				group[v] = next
				next++
			}
		}
		groupOf[i] = group
		// Contract level i by group.
		b := graph.NewBuilder(next)
		weights := make([]int64, next)
		for v := 0; v < gi.NumNodes(); v++ {
			weights[group[v]] += gi.NodeWeight(v)
		}
		for c, w := range weights {
			b.SetNodeWeight(c, w)
		}
		for v := 0; v < gi.NumNodes(); v++ {
			for _, a := range gi.Adj(v) {
				if a.To <= v || group[v] == group[a.To] {
					continue
				}
				_ = b.AddEdge(group[v], group[a.To], a.W)
			}
		}
		set.Levels = append(set.Levels, b.Build())
	}
	// Up-maps: follow any G0 member through the next level's grouping.
	for i := 0; i+1 < levels; i++ {
		// memberOf[x] = some G0 node inside hybrid-set node x at level i.
		member := make([]int, set.Levels[i].NumNodes())
		for x := range member {
			member[x] = -1
		}
		for v0 := range assignAt[i] {
			x := groupOf[i][assignAt[i][v0]]
			if member[x] == -1 {
				member[x] = v0
			}
		}
		up := make([]int, set.Levels[i].NumNodes())
		for x, m := range member {
			if m == -1 {
				return nil, fmt.Errorf("hybrid: set level %d node %d empty", i, x)
			}
			up[x] = groupOf[i+1][assignAt[i+1][m]]
		}
		set.Up = append(set.Up, up)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("hybrid: invalid set: %w", err)
	}
	return set, nil
}

// layoutScratch holds reusable state for cluster layout tests.
type layoutScratch struct {
	reads   []dna.Read
	recs    []overlap.Record
	inc     [][]int32
	cfg     Config
	inSet   []bool // membership bitmap, reset after each use
	pos     []int
	visited []bool
}

func newLayoutScratch(n int, reads []dna.Read, recs []overlap.Record, inc [][]int32, cfg Config) *layoutScratch {
	return &layoutScratch{
		reads: reads, recs: recs, inc: inc, cfg: cfg,
		inSet: make([]bool, n), pos: make([]int, n), visited: make([]bool, n),
	}
}

// tryLayout tests whether the cluster is linear (every overlap-implied
// position is consistent and the cluster is one connected block) and, if
// so, assembles its consensus contig.
func (s *layoutScratch) tryLayout(members []int, level int) (Node, bool) {
	if len(members) == 1 {
		v := members[0]
		return Node{
			Level:   level,
			Members: []int{v},
			Contig:  append([]byte(nil), s.reads[v].Seq...),
			Offsets: []int{0},
		}, true
	}
	for _, m := range members {
		s.inSet[m] = true
	}
	defer func() {
		for _, m := range members {
			s.inSet[m] = false
			s.visited[m] = false
		}
	}()

	// BFS position propagation from members[0].
	start := members[0]
	s.pos[start] = 0
	s.visited[start] = true
	queue := []int{start}
	count := 1
	ok := true
	for len(queue) > 0 && ok {
		v := queue[0]
		queue = queue[1:]
		for _, ri := range s.inc[v] {
			r := s.recs[ri]
			// Position of B is always pos(A) + Diag.
			var u int
			var p int
			if int(r.A) == v {
				u = int(r.B)
				p = s.pos[v] + int(r.Diag)
			} else {
				u = int(r.A)
				p = s.pos[v] - int(r.Diag)
			}
			if !s.inSet[u] {
				continue
			}
			if s.visited[u] {
				d := s.pos[u] - p
				if d < 0 {
					d = -d
				}
				if d > s.cfg.PosTolerance {
					ok = false // inconsistent layout: collapsed repeat
					break
				}
				continue
			}
			s.visited[u] = true
			s.pos[u] = p
			queue = append(queue, u)
			count++
		}
	}
	if !ok || count != len(members) {
		return Node{}, false // inconsistent or disconnected
	}

	// Normalize offsets and check the layout tiles one contiguous block.
	minPos := s.pos[members[0]]
	for _, m := range members {
		if s.pos[m] < minPos {
			minPos = s.pos[m]
		}
	}
	type placed struct{ v, off int }
	order := make([]placed, 0, len(members))
	for _, m := range members {
		order = append(order, placed{m, s.pos[m] - minPos})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].off != order[j].off {
			return order[i].off < order[j].off
		}
		return order[i].v < order[j].v
	})
	end := 0
	for _, p := range order {
		if p.off > end {
			return Node{}, false // gap in coverage
		}
		if e := p.off + len(s.reads[p.v].Seq); e > end {
			end = e
		}
	}

	// Anti-chimera check: every pair whose layout implies a substantial
	// overlap must be backed by a real overlap record. A layout that
	// jumps between copies of an exact repeat places divergent reads on
	// top of each other without evidence; reject it.
	hasRec := make(map[[2]int32]bool)
	for _, m := range members {
		for _, ri := range s.inc[m] {
			r := s.recs[ri]
			if s.inSet[r.A] && s.inSet[r.B] {
				a, b := r.A, r.B
				if a > b {
					a, b = b, a
				}
				hasRec[[2]int32{a, b}] = true
			}
		}
	}
	for i := 0; i < len(order); i++ {
		endI := order[i].off + len(s.reads[order[i].v].Seq)
		for j := i + 1; j < len(order); j++ {
			if order[j].off > endI-s.cfg.RequireOverlap {
				break // later reads overlap read i even less
			}
			endJ := order[j].off + len(s.reads[order[j].v].Seq)
			implied := endI
			if endJ < implied {
				implied = endJ
			}
			implied -= order[j].off
			if implied < s.cfg.RequireOverlap {
				continue
			}
			a, b := int32(order[i].v), int32(order[j].v)
			if a > b {
				a, b = b, a
			}
			if !hasRec[[2]int32{a, b}] {
				return Node{}, false
			}
		}
	}

	// Consensus by per-column majority vote.
	counts := make([][4]int32, end)
	for _, p := range order {
		for i, b := range s.reads[p.v].Seq {
			if c, ok := dna.BaseCode(b); ok {
				counts[p.off+i][c]++
			}
		}
	}
	contig := make([]byte, end)
	for i, c := range counts {
		best := 0
		for j := 1; j < 4; j++ {
			if c[j] > c[best] {
				best = j
			}
		}
		if c[best] == 0 {
			contig[i] = 'N'
		} else {
			contig[i] = dna.CodeBase(byte(best))
		}
	}

	node := Node{Level: level, Members: make([]int, len(order)), Offsets: make([]int, len(order)), Contig: contig}
	for i, p := range order {
		node.Members[i] = p.v
		node.Offsets[i] = p.off
	}
	return node, true
}
