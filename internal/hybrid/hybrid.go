// Package hybrid builds the hybrid graph set G' = {G'0 … G'n} of paper
// §II.D and §III. A best representative node is a node selected from the
// most reduced multilevel graph possible whose read cluster assembles into
// one contiguous contig; the hybrid graph G'0 contains all best
// representatives. Partitioning G'0's set instead of the full multilevel
// set is the paper's mechanism for injecting the linearity of DNA into the
// partitioner.
package hybrid

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"focus/internal/dna"
	"focus/internal/graph"
	"focus/internal/overlap"
	"focus/internal/par"
)

// Node is one hybrid-graph node: a best-representative read cluster.
type Node struct {
	// Level is the multilevel graph level the representative was selected
	// from (0 = a single read).
	Level int
	// Members are the overlap-graph (G0) node ids in the cluster.
	Members []int
	// Contig is the consensus sequence assembled from the cluster layout.
	Contig []byte
	// Offsets[i] is the layout position of Members[i] within Contig.
	Offsets []int
}

// Hybrid is the hybrid graph plus its coarsening set and provenance.
type Hybrid struct {
	Nodes []Node
	// RepOf maps each G0 node to its hybrid node index.
	RepOf []int
	// G is the hybrid graph G'0 (undirected, edge weights = summed
	// crossing overlap lengths), the graph the distributed assembly
	// algorithms run on.
	G *graph.Graph
	// Set is the hybrid graph set {G'0 … G'n} used for partitioning.
	Set *graph.Set
}

// Config controls linearity testing.
type Config struct {
	// PosTolerance is the max disagreement (bases) between two layout
	// position estimates of the same read before the cluster is declared
	// non-linear (e.g. collapsed repeats).
	PosTolerance int
	// RequireOverlap guards against chimeric layouts across exact repeat
	// copies: any two cluster reads whose layout implies an overlap of at
	// least this many bases must be connected by an actual overlap
	// record, otherwise the cluster is rejected. Slightly above the
	// overlap acceptance threshold so sparse seed sampling does not cause
	// spurious rejections.
	RequireOverlap int
	// Workers bounds the pool that fans the per-cluster layout tests out
	// (each worker owns its own layoutScratch); <= 0 means GOMAXPROCS.
	// Hybrid output is identical at any worker count: clusters at one
	// level are disjoint, and representatives are committed serially in
	// cluster order after the parallel tests.
	Workers int
}

// DefaultConfig returns the default linearity tolerances.
func DefaultConfig() Config { return Config{PosTolerance: 5, RequireOverlap: 65} }

// Build selects best representatives top-down through the multilevel set
// and assembles the hybrid graph set. reads are the preprocessed reads
// backing G0 (= mset.Levels[0]); recs are the overlap records.
func Build(mset *graph.Set, reads []dna.Read, recs []overlap.Record, cfg Config) (*Hybrid, error) {
	return BuildCtx(nil, mset, reads, recs, cfg)
}

// BuildCtx is Build bounded by ctx: a cancel abandons the layout sweep at
// the next per-cluster boundary (and the contractions at their chunk
// boundaries) and returns the context's cause. A nil ctx never cancels.
func BuildCtx(ctx context.Context, mset *graph.Set, reads []dna.Read, recs []overlap.Record, cfg Config) (*Hybrid, error) {
	gate := par.GateFor(ctx)
	if err := mset.Validate(); err != nil {
		return nil, err
	}
	g0 := mset.Levels[0]
	if g0.NumNodes() != len(reads) {
		return nil, fmt.Errorf("hybrid: %d reads for %d graph nodes", len(reads), g0.NumNodes())
	}
	if cfg.PosTolerance <= 0 {
		cfg.PosTolerance = DefaultConfig().PosTolerance
	}
	if cfg.RequireOverlap <= 0 {
		cfg.RequireOverlap = DefaultConfig().RequireOverlap
	}

	// Incidence of overlap records per G0 node.
	inc := make([][]int32, len(reads))
	for ri, r := range recs {
		inc[r.A] = append(inc[r.A], int32(ri))
		inc[r.B] = append(inc[r.B], int32(ri))
	}

	// assign[v] = current node of level L containing G0 node v.
	n0 := g0.NumNodes()
	levels := len(mset.Levels)
	// Cumulative assignment per level.
	assignAt := make([][]int, levels)
	assignAt[0] = make([]int, n0)
	for v := range assignAt[0] {
		assignAt[0][v] = v
	}
	for i := 1; i < levels; i++ {
		assignAt[i] = make([]int, n0)
		for v := 0; v < n0; v++ {
			assignAt[i][v] = mset.Up[i-1][assignAt[i-1][v]]
		}
	}

	h := &Hybrid{RepOf: make([]int, n0)}
	for v := range h.RepOf {
		h.RepOf[v] = -1
	}

	// Top-down selection: coarsest level first. Within one level the
	// clusters are disjoint, so their layout tests are embarrassingly
	// parallel: candidates fan out over a bounded pool (one layoutScratch
	// per worker), then accepted representatives are committed serially
	// in cluster order so node numbering — and therefore the whole hybrid
	// graph — is identical at any worker count.
	workers := par.Limit(cfg.Workers)
	scratches := make([]*layoutScratch, workers)
	scratches[0] = newLayoutScratch(n0, reads, recs, inc, cfg)
	type layoutResult struct {
		node Node
		ok   bool
	}
	var cands [][]int
	var results []layoutResult
	for level := levels - 1; level >= 0; level-- {
		clusters := clustersAt(assignAt[level], mset.Levels[level].NumNodes())
		cands = cands[:0]
		for _, members := range clusters {
			if len(members) == 0 {
				continue
			}
			if h.RepOf[members[0]] != -1 {
				continue // already covered by a higher-level representative
			}
			cands = append(cands, members)
		}
		if cap(results) < len(cands) {
			results = make([]layoutResult, len(cands))
		}
		results = results[:len(cands)]
		// A layout test touches a whole cluster; a handful per worker
		// already pays for the fan-out, so the grain is small.
		w := par.Workers(cfg.Workers, len(cands), 64)
		if w <= 1 {
			for i, members := range cands {
				if gate.Stopped() {
					return nil, gate.Err()
				}
				node, ok := scratches[0].tryLayout(members, level)
				results[i] = layoutResult{node, ok}
			}
		} else {
			var next int64
			var wg sync.WaitGroup
			wg.Add(w)
			for p := 0; p < w; p++ {
				if scratches[p] == nil {
					scratches[p] = newLayoutScratch(n0, reads, recs, inc, cfg)
				}
				go func(sc *layoutScratch) {
					defer wg.Done()
					for {
						i := int(atomic.AddInt64(&next, 1)) - 1
						if i >= len(cands) || gate.Stopped() {
							return
						}
						node, ok := sc.tryLayout(cands[i], level)
						results[i] = layoutResult{node, ok}
					}
				}(scratches[p])
			}
			wg.Wait()
			if gate.Stopped() {
				return nil, gate.Err()
			}
		}
		for i, members := range cands {
			if !results[i].ok {
				continue // not linear; descend to children
			}
			id := len(h.Nodes)
			h.Nodes = append(h.Nodes, results[i].node)
			for _, m := range members {
				h.RepOf[m] = id
			}
		}
	}
	// Level-0 singletons are always linear, so everything is covered.
	for v, r := range h.RepOf {
		if r == -1 {
			return nil, fmt.Errorf("hybrid: node %d uncovered (internal error)", v)
		}
	}

	// Hybrid graph G'0: contract G0 by RepOf. Node weights are the cluster
	// sizes (read counts), set explicitly rather than summed from G0.
	nw := make([]int64, len(h.Nodes))
	for i, n := range h.Nodes {
		nw[i] = int64(len(n.Members))
	}
	var err error
	h.G, err = graph.ContractWithWeightsCtx(ctx, g0, h.RepOf, nw, workers)
	if err != nil {
		return nil, err
	}

	// Hybrid graph set: at level i, nodes of Gi whose cluster belongs to a
	// representative chosen at level >= i collapse into that
	// representative; the rest stay as themselves (paper Fig. 1B).
	set, err := buildHybridSet(ctx, mset, assignAt, h, workers)
	if err != nil {
		return nil, err
	}
	h.Set = set
	return h, nil
}

// clustersAt groups G0 node ids by their node at some level.
func clustersAt(assign []int, numNodes int) [][]int {
	out := make([][]int, numNodes)
	for v, c := range assign {
		out[c] = append(out[c], v)
	}
	return out
}

// buildHybridSet contracts every multilevel level by the representative
// assignment to produce the hybrid set and its up-maps.
func buildHybridSet(ctx context.Context, mset *graph.Set, assignAt [][]int, h *Hybrid, workers int) (*graph.Set, error) {
	levels := len(mset.Levels)
	set := &graph.Set{}
	// groupOf[i][v] = hybrid-set node of level-i node v; sizes[i] = count.
	groupOf := make([][]int, levels)
	for i := 0; i < levels; i++ {
		gi := mset.Levels[i]
		// First member of each level-i node.
		first := make([]int, gi.NumNodes())
		for v := range first {
			first[v] = -1
		}
		for v0, c := range assignAt[i] {
			if first[c] == -1 {
				first[c] = v0
			}
		}
		group := make([]int, gi.NumNodes())
		// Slot layout: representatives first (in rep-id order, so that
		// level 0 of the hybrid set uses exactly the hybrid node ids),
		// then the surviving plain level-i nodes in id order.
		// repSlot[r] = dense slot of representative r, or -1. Slots are
		// assigned in ascending rep-id order, so level 0 of the hybrid
		// set uses exactly the hybrid node ids.
		repSlot := make([]int, len(h.Nodes))
		for r := range repSlot {
			repSlot[r] = -1
		}
		repFor := make([]int, gi.NumNodes()) // rep id, or -1 for plain
		for v := 0; v < gi.NumNodes(); v++ {
			m := first[v]
			if m == -1 {
				return nil, fmt.Errorf("hybrid: level %d node %d has no members", i, v)
			}
			r := h.RepOf[m]
			if h.Nodes[r].Level >= i {
				repFor[v] = r
				repSlot[r] = 0
			} else {
				repFor[v] = -1
			}
		}
		next := 0
		for r := range repSlot {
			if repSlot[r] == 0 {
				repSlot[r] = next
				next++
			}
		}
		for v := 0; v < gi.NumNodes(); v++ {
			if r := repFor[v]; r != -1 {
				group[v] = repSlot[r]
			} else {
				group[v] = next
				next++
			}
		}
		groupOf[i] = group
		// Contract level i by group: weights sum within groups, crossing
		// edges merge, all on the bounded worker pool.
		ci, err := graph.ContractCtx(ctx, gi, group, next, workers)
		if err != nil {
			return nil, err
		}
		set.Levels = append(set.Levels, ci)
	}
	// Up-maps: follow any G0 member through the next level's grouping.
	for i := 0; i+1 < levels; i++ {
		// memberOf[x] = some G0 node inside hybrid-set node x at level i.
		member := make([]int, set.Levels[i].NumNodes())
		for x := range member {
			member[x] = -1
		}
		for v0 := range assignAt[i] {
			x := groupOf[i][assignAt[i][v0]]
			if member[x] == -1 {
				member[x] = v0
			}
		}
		up := make([]int, set.Levels[i].NumNodes())
		for x, m := range member {
			if m == -1 {
				return nil, fmt.Errorf("hybrid: set level %d node %d empty", i, x)
			}
			up[x] = groupOf[i+1][assignAt[i+1][m]]
		}
		set.Up = append(set.Up, up)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("hybrid: invalid set: %w", err)
	}
	return set, nil
}

// layoutScratch holds reusable state for cluster layout tests. Each
// worker owns exactly one scratch: the dense n-sized bitmaps are reset
// on exit from every tryLayout call, and the variable-size buffers
// (queue, order, pairs, counts) are truncated and reused so steady-state
// layout tests allocate only their accepted Node results.
type layoutScratch struct {
	reads   []dna.Read
	recs    []overlap.Record
	inc     [][]int32
	cfg     Config
	inSet   []bool // membership bitmap, reset after each use
	pos     []int
	visited []bool
	queue   []int      // BFS worklist
	order   []placed   // members sorted by (offset, id)
	mark    []int64    // record-backed partner stamps (epoch-keyed)
	epoch   int64      // current stamp; bumped instead of clearing mark
	counts  [][4]int32 // consensus vote columns
}

// placed is a cluster member at its normalized layout offset.
type placed struct{ v, off int }

func newLayoutScratch(n int, reads []dna.Read, recs []overlap.Record, inc [][]int32, cfg Config) *layoutScratch {
	return &layoutScratch{
		reads: reads, recs: recs, inc: inc, cfg: cfg,
		inSet: make([]bool, n), pos: make([]int, n), visited: make([]bool, n),
		mark: make([]int64, n),
	}
}

// tryLayout tests whether the cluster is linear (every overlap-implied
// position is consistent and the cluster is one connected block) and, if
// so, assembles its consensus contig.
func (s *layoutScratch) tryLayout(members []int, level int) (Node, bool) {
	if len(members) == 1 {
		v := members[0]
		return Node{
			Level:   level,
			Members: []int{v},
			Contig:  append([]byte(nil), s.reads[v].Seq...),
			Offsets: []int{0},
		}, true
	}
	for _, m := range members {
		s.inSet[m] = true
	}
	defer func() {
		for _, m := range members {
			s.inSet[m] = false
			s.visited[m] = false
		}
	}()

	// BFS position propagation from members[0].
	start := members[0]
	s.pos[start] = 0
	s.visited[start] = true
	queue := append(s.queue[:0], start)
	head := 0
	count := 1
	ok := true
	for head < len(queue) && ok {
		v := queue[head]
		head++
		for _, ri := range s.inc[v] {
			r := s.recs[ri]
			// Position of B is always pos(A) + Diag.
			var u int
			var p int
			if int(r.A) == v {
				u = int(r.B)
				p = s.pos[v] + int(r.Diag)
			} else {
				u = int(r.A)
				p = s.pos[v] - int(r.Diag)
			}
			if !s.inSet[u] {
				continue
			}
			if s.visited[u] {
				d := s.pos[u] - p
				if d < 0 {
					d = -d
				}
				if d > s.cfg.PosTolerance {
					ok = false // inconsistent layout: collapsed repeat
					break
				}
				continue
			}
			s.visited[u] = true
			s.pos[u] = p
			queue = append(queue, u)
			count++
		}
	}
	s.queue = queue[:0]
	if !ok || count != len(members) {
		return Node{}, false // inconsistent or disconnected
	}

	// Normalize offsets and check the layout tiles one contiguous block.
	minPos := s.pos[members[0]]
	for _, m := range members {
		if s.pos[m] < minPos {
			minPos = s.pos[m]
		}
	}
	order := s.order[:0]
	for _, m := range members {
		order = append(order, placed{m, s.pos[m] - minPos})
	}
	s.order = order
	slices.SortFunc(order, func(a, b placed) int {
		if a.off != b.off {
			return a.off - b.off
		}
		return a.v - b.v
	})
	end := 0
	for _, p := range order {
		if p.off > end {
			return Node{}, false // gap in coverage
		}
		if e := p.off + len(s.reads[p.v].Seq); e > end {
			end = e
		}
	}

	// Anti-chimera check: every pair whose layout implies a substantial
	// overlap must be backed by a real overlap record. A layout that
	// jumps between copies of an exact repeat places divergent reads on
	// top of each other without evidence; reject it.
	// For each read in layout order, stamp its record-backed partners
	// with a fresh epoch and demand every close pair carry a stamp. The
	// mark array persists across calls; bumping the epoch invalidates
	// old stamps without clearing.
	for i := 0; i < len(order); i++ {
		v := order[i].v
		endI := order[i].off + len(s.reads[v].Seq)
		if i+1 < len(order) && order[i+1].off <= endI-s.cfg.RequireOverlap {
			s.epoch++
			for _, ri := range s.inc[v] {
				r := s.recs[ri]
				u := int(r.B)
				if u == v {
					u = int(r.A)
				}
				s.mark[u] = s.epoch
			}
		}
		for j := i + 1; j < len(order); j++ {
			if order[j].off > endI-s.cfg.RequireOverlap {
				break // later reads overlap read i even less
			}
			endJ := order[j].off + len(s.reads[order[j].v].Seq)
			implied := endI
			if endJ < implied {
				implied = endJ
			}
			implied -= order[j].off
			if implied < s.cfg.RequireOverlap {
				continue
			}
			if s.mark[order[j].v] != s.epoch {
				return Node{}, false
			}
		}
	}

	// Consensus by per-column majority vote.
	if cap(s.counts) < end {
		s.counts = make([][4]int32, end)
	}
	counts := s.counts[:end]
	clear(counts)
	for _, p := range order {
		for i, b := range s.reads[p.v].Seq {
			if c, ok := dna.BaseCode(b); ok {
				counts[p.off+i][c]++
			}
		}
	}
	contig := make([]byte, end)
	for i, c := range counts {
		best := 0
		for j := 1; j < 4; j++ {
			if c[j] > c[best] {
				best = j
			}
		}
		if c[best] == 0 {
			contig[i] = 'N'
		} else {
			contig[i] = dna.CodeBase(byte(best))
		}
	}

	node := Node{Level: level, Members: make([]int, len(order)), Offsets: make([]int, len(order)), Contig: contig}
	for i, p := range order {
		node.Members[i] = p.v
		node.Offsets[i] = p.off
	}
	return node, true
}
