package hybrid

import (
	"testing"

	"focus/internal/coarsen"
	"focus/internal/overlap"
)

// TestHybridInvariantsAcrossSeeds checks structural invariants of the
// hybrid construction over randomized genomes: RepOf partitions the
// reads, every representative's members agree with RepOf, hybrid set
// levels shrink monotonically in node count and conserve read weight,
// and offsets within each cluster start at zero.
func TestHybridInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		genome := randGenome(300+seed, 2000+int(seed)*700)
		// Insert a repeat for the later seeds to stress the anti-chimera
		// rejection paths.
		if seed >= 2 {
			copy(genome[len(genome)-400:], genome[100:500])
		}
		reads := tilingReads(genome, 100, 20+int(seed)*7)
		cfg := overlap.DefaultConfig()
		cfg.Workers = 2
		recs, err := overlap.FindOverlaps(reads, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g0, err := overlap.BuildGraph(len(reads), recs)
		if err != nil {
			t.Fatal(err)
		}
		copt := coarsen.DefaultOptions()
		copt.MinNodes = 4
		copt.Seed = seed
		mset := coarsen.Multilevel(g0, copt)
		h, err := Build(mset, reads, recs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}

		// RepOf is a partition consistent with Nodes.
		count := 0
		for ri, node := range h.Nodes {
			if len(node.Members) == 0 {
				t.Fatalf("seed %d: empty representative %d", seed, ri)
			}
			for mi, m := range node.Members {
				if h.RepOf[m] != ri {
					t.Fatalf("seed %d: RepOf[%d]=%d, member of %d", seed, m, h.RepOf[m], ri)
				}
				if node.Offsets[mi] < 0 {
					t.Fatalf("seed %d: negative offset", seed)
				}
				end := node.Offsets[mi] + len(reads[m].Seq)
				if end > len(node.Contig) {
					t.Fatalf("seed %d: member %d extends past contig (%d > %d)", seed, m, end, len(node.Contig))
				}
			}
			// Some member starts at offset 0 (normalized layout).
			min := node.Offsets[0]
			for _, o := range node.Offsets {
				if o < min {
					min = o
				}
			}
			if min != 0 {
				t.Fatalf("seed %d: cluster %d min offset %d", seed, ri, min)
			}
			count += len(node.Members)
		}
		if count != len(reads) {
			t.Fatalf("seed %d: clusters cover %d of %d reads", seed, count, len(reads))
		}

		// Hybrid set structure.
		if err := h.Set.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 1; i < len(h.Set.Levels); i++ {
			if h.Set.Levels[i].NumNodes() > h.Set.Levels[i-1].NumNodes() {
				t.Fatalf("seed %d: hybrid level %d grew", seed, i)
			}
		}
		for i, lvl := range h.Set.Levels {
			if lvl.TotalNodeWeight() != int64(len(reads)) {
				t.Fatalf("seed %d: level %d weight %d != %d reads", seed, i, lvl.TotalNodeWeight(), len(reads))
			}
		}
	}
}
