package hybrid

import (
	"testing"

	"focus/internal/coarsen"
	"focus/internal/dna"
	"focus/internal/overlap"
)

// pipelineInput prepares a pipeline input (reads, records, multilevel
// set) and returns a rebuild closure for equivalence tests and
// benchmarks.
func pipelineInput(tb testing.TB, seed int64, genomeLen, step int) ([]dna.Read, []overlap.Record, *Hybrid, func(workers int) *Hybrid) {
	tb.Helper()
	genome := randGenome(seed, genomeLen)
	reads := tilingReads(genome, 100, step)
	cfg := overlap.DefaultConfig()
	recs, err := overlap.FindOverlaps(reads, 2, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	g0, err := overlap.BuildGraph(len(reads), recs)
	if err != nil {
		tb.Fatal(err)
	}
	copt := coarsen.DefaultOptions()
	copt.MinNodes = 4
	copt.Seed = seed
	mset := coarsen.Multilevel(g0, copt)
	build := func(workers int) *Hybrid {
		hcfg := DefaultConfig()
		hcfg.Workers = workers
		h, err := Build(mset, reads, recs, hcfg)
		if err != nil {
			tb.Fatal(err)
		}
		return h
	}
	return reads, recs, build(1), build
}

// TestBuildWorkerEquivalence: hybrid construction is byte-identical at
// worker counts 1, 2 and 8 — node list, members, offsets, contigs, RepOf,
// the hybrid graph and its level set.
func TestBuildWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		_, _, ref, build := pipelineInput(t, 500+seed, 2500, 25)
		for _, w := range []int{2, 8} {
			got := build(w)
			if len(got.Nodes) != len(ref.Nodes) {
				t.Fatalf("seed %d workers %d: %d nodes vs %d", seed, w, len(got.Nodes), len(ref.Nodes))
			}
			for i := range ref.Nodes {
				rn, gn := ref.Nodes[i], got.Nodes[i]
				if string(rn.Contig) != string(gn.Contig) {
					t.Fatalf("seed %d workers %d: contig %d diverged", seed, w, i)
				}
				if len(rn.Members) != len(gn.Members) {
					t.Fatalf("seed %d workers %d: node %d member count", seed, w, i)
				}
				for j := range rn.Members {
					if rn.Members[j] != gn.Members[j] || rn.Offsets[j] != gn.Offsets[j] {
						t.Fatalf("seed %d workers %d: node %d member %d diverged", seed, w, i, j)
					}
				}
			}
			for v := range ref.RepOf {
				if got.RepOf[v] != ref.RepOf[v] {
					t.Fatalf("seed %d workers %d: RepOf[%d] diverged", seed, w, v)
				}
			}
			if !got.G.Equal(ref.G) {
				t.Fatalf("seed %d workers %d: hybrid graph diverged", seed, w)
			}
			if len(got.Set.Levels) != len(ref.Set.Levels) {
				t.Fatalf("seed %d workers %d: level counts diverged", seed, w)
			}
			for i := range ref.Set.Levels {
				if !got.Set.Levels[i].Equal(ref.Set.Levels[i]) {
					t.Fatalf("seed %d workers %d: hybrid set level %d diverged", seed, w, i)
				}
			}
		}
	}
}

func BenchmarkHybridBuild(b *testing.B) {
	_, _, _, build := pipelineInput(b, 77, 6000, 12)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = build(1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = build(0)
		}
	})
}
