package hybrid

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/coarsen"
	"focus/internal/dna"
	"focus/internal/graph"
	"focus/internal/overlap"
)

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func tilingReads(genome []byte, l, s int) []dna.Read {
	var reads []dna.Read
	for pos := 0; pos+l <= len(genome); pos += s {
		reads = append(reads, dna.Read{ID: "t", Seq: append([]byte(nil), genome[pos:pos+l]...)})
	}
	return reads
}

// pipeline builds overlap records, G0 and the multilevel set for reads.
func pipeline(t *testing.T, reads []dna.Read) ([]overlap.Record, *graph.Set) {
	t.Helper()
	cfg := overlap.DefaultConfig()
	cfg.Workers = 2
	recs, err := overlap.FindOverlaps(reads, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g0, err := overlap.BuildGraph(len(reads), recs)
	if err != nil {
		t.Fatal(err)
	}
	copt := coarsen.DefaultOptions()
	copt.MinNodes = 2
	return recs, coarsen.Multilevel(g0, copt)
}

func TestBuildLinearGenome(t *testing.T) {
	genome := randGenome(60, 3000)
	reads := tilingReads(genome, 100, 30)
	recs, mset := pipeline(t, reads)
	h, err := Build(mset, reads, recs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Coverage: every read in exactly one representative.
	seen := make([]bool, len(reads))
	for i, n := range h.Nodes {
		if len(n.Members) != len(n.Offsets) {
			t.Fatalf("node %d: members/offsets mismatch", i)
		}
		for _, m := range n.Members {
			if seen[m] {
				t.Fatalf("read %d in two representatives", m)
			}
			seen[m] = true
			if h.RepOf[m] != i {
				t.Fatalf("RepOf[%d] = %d, want %d", m, h.RepOf[m], i)
			}
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("read %d uncovered", v)
		}
	}

	// A clean linear genome must compress into far fewer hybrid nodes
	// than reads.
	if len(h.Nodes) >= len(reads)/2 {
		t.Errorf("hybrid graph has %d nodes for %d reads; expected strong reduction", len(h.Nodes), len(reads))
	}

	// Error-free tiling: every contig must occur exactly in the genome.
	for i, n := range h.Nodes {
		if len(n.Members) == 1 {
			continue
		}
		if !bytes.Contains(genome, n.Contig) {
			t.Errorf("contig of node %d (level %d, %d reads, %d bp) not a genome substring", i, n.Level, len(n.Members), len(n.Contig))
		}
	}

	if err := h.Set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Level 0 of the hybrid set is the hybrid graph itself.
	if h.Set.Levels[0].NumNodes() != h.G.NumNodes() {
		t.Fatalf("set level 0 has %d nodes, hybrid graph %d", h.Set.Levels[0].NumNodes(), h.G.NumNodes())
	}
	if h.Set.Levels[0].TotalEdgeWeight() != h.G.TotalEdgeWeight() {
		t.Errorf("set level 0 edge weight %d, hybrid graph %d", h.Set.Levels[0].TotalEdgeWeight(), h.G.TotalEdgeWeight())
	}
	for v := 0; v < h.G.NumNodes(); v++ {
		if h.Set.Levels[0].NodeWeight(v) != h.G.NodeWeight(v) {
			t.Fatalf("node %d weight differs between set level 0 and hybrid graph", v)
		}
	}

	// The hybrid set is never larger than the multilevel set, level by
	// level (representatives only merge nodes).
	for i := range h.Set.Levels {
		if h.Set.Levels[i].NumNodes() > mset.Levels[i].NumNodes() {
			t.Errorf("hybrid level %d larger than multilevel: %d > %d", i, h.Set.Levels[i].NumNodes(), mset.Levels[i].NumNodes())
		}
	}
}

func TestBuildDetectsRepeatConflicts(t *testing.T) {
	// Genome with a long exact repeat: reads inside the two repeat copies
	// are near-identical, so clusters collapsing both copies are
	// non-linear and must be rejected (representatives descend).
	rng := rand.New(rand.NewSource(61))
	_ = rng
	left := randGenome(62, 800)
	rep := randGenome(63, 300)
	mid := randGenome(64, 800)
	genome := append(append(append(append([]byte{}, left...), rep...), mid...), rep...)
	genome = append(genome, randGenome(65, 800)...)
	reads := tilingReads(genome, 100, 25)
	recs, mset := pipeline(t, reads)
	h, err := Build(mset, reads, recs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All contigs from multi-read clusters must still be genome
	// substrings (no chimeras from the repeat).
	bad := 0
	for _, n := range h.Nodes {
		if len(n.Members) > 1 && !bytes.Contains(genome, n.Contig) {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d chimeric contigs built across repeat copies", bad)
	}
}

func TestTryLayoutRejectsInconsistentPositions(t *testing.T) {
	// Two records that disagree about the relative position of reads 0,1.
	reads := []dna.Read{
		{ID: "a", Seq: bytes.Repeat([]byte("A"), 100)},
		{ID: "b", Seq: bytes.Repeat([]byte("A"), 100)},
		{ID: "c", Seq: bytes.Repeat([]byte("A"), 100)},
	}
	recs := []overlap.Record{
		{A: 0, B: 1, Len: 60, Identity: 1, Diag: 40},
		{A: 1, B: 2, Len: 60, Identity: 1, Diag: 40},
		{A: 0, B: 2, Len: 90, Identity: 1, Diag: 10}, // conflicts: should be 80
	}
	inc := make([][]int32, 3)
	for ri, r := range recs {
		inc[r.A] = append(inc[r.A], int32(ri))
		inc[r.B] = append(inc[r.B], int32(ri))
	}
	s := newLayoutScratch(3, reads, recs, inc, DefaultConfig())
	if _, ok := s.tryLayout([]int{0, 1, 2}, 1); ok {
		t.Error("inconsistent cluster accepted as linear")
	}
	// Consistent version must pass.
	recs[2].Diag = 80
	if _, ok := s.tryLayout([]int{0, 1, 2}, 1); !ok {
		t.Error("consistent cluster rejected")
	}
}

func TestTryLayoutRejectsDisconnected(t *testing.T) {
	reads := []dna.Read{
		{ID: "a", Seq: bytes.Repeat([]byte("A"), 100)},
		{ID: "b", Seq: bytes.Repeat([]byte("C"), 100)},
	}
	var recs []overlap.Record
	inc := make([][]int32, 2)
	s := newLayoutScratch(2, reads, recs, inc, DefaultConfig())
	if _, ok := s.tryLayout([]int{0, 1}, 1); ok {
		t.Error("disconnected cluster accepted")
	}
}

func TestTryLayoutSingleton(t *testing.T) {
	reads := []dna.Read{{ID: "a", Seq: []byte("ACGT")}}
	s := newLayoutScratch(1, reads, nil, make([][]int32, 1), DefaultConfig())
	n, ok := s.tryLayout([]int{0}, 0)
	if !ok || string(n.Contig) != "ACGT" || n.Level != 0 {
		t.Errorf("singleton layout = %+v ok=%v", n, ok)
	}
}

func TestTryLayoutConsensusFixesErrors(t *testing.T) {
	// Three reads tile a region; one read has an error in the overlap;
	// majority vote must recover the true base.
	genome := randGenome(66, 200)
	r0 := append([]byte(nil), genome[0:100]...)
	r1 := append([]byte(nil), genome[30:130]...)
	r2 := append([]byte(nil), genome[60:160]...)
	// Introduce an error in r1 at genome position 70 (r1 offset 40),
	// which is covered by r0 (offset 70) and r2 (offset 10).
	truth := genome[70]
	var wrong byte = 'A'
	if truth == 'A' {
		wrong = 'C'
	}
	r1[40] = wrong
	reads := []dna.Read{{ID: "0", Seq: r0}, {ID: "1", Seq: r1}, {ID: "2", Seq: r2}}
	recs := []overlap.Record{
		{A: 0, B: 1, Len: 70, Identity: 0.98, Diag: 30},
		{A: 1, B: 2, Len: 70, Identity: 0.98, Diag: 30},
		{A: 0, B: 2, Len: 40, Identity: 1, Diag: 60},
	}
	inc := make([][]int32, 3)
	for ri, r := range recs {
		inc[r.A] = append(inc[r.A], int32(ri))
		inc[r.B] = append(inc[r.B], int32(ri))
	}
	s := newLayoutScratch(3, reads, recs, inc, DefaultConfig())
	n, ok := s.tryLayout([]int{0, 1, 2}, 1)
	if !ok {
		t.Fatal("cluster rejected")
	}
	if len(n.Contig) != 160 {
		t.Fatalf("contig length = %d, want 160", len(n.Contig))
	}
	if n.Contig[70] != truth {
		t.Errorf("consensus base = %c, want %c", n.Contig[70], truth)
	}
	if !bytes.Equal(n.Contig, genome[:160]) {
		t.Error("contig does not match genome")
	}
}

func TestBuildValidation(t *testing.T) {
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	set := &graph.Set{Levels: []*graph.Graph{g}}
	if _, err := Build(set, []dna.Read{{ID: "a", Seq: []byte("A")}}, nil, DefaultConfig()); err == nil {
		t.Error("read/node count mismatch accepted")
	}
	if _, err := Build(&graph.Set{}, nil, nil, DefaultConfig()); err == nil {
		t.Error("empty set accepted")
	}
}
