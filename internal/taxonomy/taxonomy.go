// Package taxonomy classifies reads to reference genomes by exact k-mer
// voting and summarizes how genera distribute over graph partitions. It
// substitutes for the paper's BWA-against-HMP-reference step in §VI.E: the
// experiment only needs a best-hit genus per read, which canonical k-mer
// voting against the simulated references provides.
package taxonomy

import (
	"fmt"
	"math"
	"sort"

	"focus/internal/dna"
)

// Reference is one labeled reference sequence.
type Reference struct {
	Name   string
	Genus  string
	Phylum string
	Seq    []byte
}

// Classifier is a canonical-k-mer index over a reference set.
type Classifier struct {
	k    int
	refs []Reference
	// index maps a canonical k-mer to the reference that owns it, or to
	// ambiguous when several references share it. Shared (ancestral)
	// k-mers between related genera thus do not vote.
	index map[dna.Kmer]int32
}

const ambiguous = int32(-2)

// NewClassifier indexes the references with canonical k-mers.
func NewClassifier(refs []Reference, k int) (*Classifier, error) {
	if k <= 0 || k > dna.MaxK {
		return nil, fmt.Errorf("taxonomy: k=%d out of range", k)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("taxonomy: no references")
	}
	c := &Classifier{k: k, refs: refs, index: make(map[dna.Kmer]int32)}
	for ri, ref := range refs {
		it := dna.NewKmerIter(ref.Seq, k)
		for {
			km, _, ok := it.Next()
			if !ok {
				break
			}
			can := km.Canonical(k)
			if owner, seen := c.index[can]; seen {
				if owner != int32(ri) {
					c.index[can] = ambiguous
				}
			} else {
				c.index[can] = int32(ri)
			}
		}
	}
	return c, nil
}

// K returns the classifier's k-mer size.
func (c *Classifier) K() int { return c.k }

// NumRefs returns the reference count.
func (c *Classifier) NumRefs() int { return len(c.refs) }

// Ref returns reference i.
func (c *Classifier) Ref(i int) Reference { return c.refs[i] }

// Classify returns the best-hit reference index for seq, or ok=false when
// no reference received a vote (the read stays unclassified, as in the
// paper).
func (c *Classifier) Classify(seq []byte) (ref int, ok bool) {
	votes := make(map[int32]int)
	it := dna.NewKmerIter(seq, c.k)
	for {
		km, _, okNext := it.Next()
		if !okNext {
			break
		}
		owner, seen := c.index[km.Canonical(c.k)]
		if seen && owner != ambiguous {
			votes[owner]++
		}
	}
	best, bestVotes := int32(-1), 0
	for r, v := range votes {
		if v > bestVotes || (v == bestVotes && best != -1 && r < best) {
			best, bestVotes = r, v
		}
	}
	if best < 0 {
		return 0, false
	}
	return int(best), true
}

// Distribution is the genus-by-partition read-count matrix behind the
// paper's Fig. 7 heat maps.
type Distribution struct {
	Genera []string
	Phyla  []string // parallel to Genera
	Parts  int
	// Counts[g][p] = classified reads of genus g whose graph node landed
	// in partition p.
	Counts [][]int
}

// Fraction returns the row-normalized fraction matrix (each genus row
// sums to 1, or stays 0 for genera with no reads).
func (d *Distribution) Fraction() [][]float64 {
	out := make([][]float64, len(d.Genera))
	for g := range d.Genera {
		out[g] = make([]float64, d.Parts)
		total := 0
		for _, c := range d.Counts[g] {
			total += c
		}
		if total == 0 {
			continue
		}
		for p, c := range d.Counts[g] {
			out[g][p] = float64(c) / float64(total)
		}
	}
	return out
}

// GenusDistribution classifies every read and accumulates counts per
// (genus, partition). labels[i] is the partition of read i's overlap-graph
// node; reads is indexed identically.
func GenusDistribution(c *Classifier, reads []dna.Read, labels []int32, parts int) (*Distribution, error) {
	if len(reads) != len(labels) {
		return nil, fmt.Errorf("taxonomy: %d reads, %d labels", len(reads), len(labels))
	}
	// Genus list in first-appearance order over references.
	genusIdx := map[string]int{}
	d := &Distribution{Parts: parts}
	for i := 0; i < c.NumRefs(); i++ {
		ref := c.Ref(i)
		if _, ok := genusIdx[ref.Genus]; !ok {
			genusIdx[ref.Genus] = len(d.Genera)
			d.Genera = append(d.Genera, ref.Genus)
			d.Phyla = append(d.Phyla, ref.Phylum)
		}
	}
	d.Counts = make([][]int, len(d.Genera))
	for g := range d.Counts {
		d.Counts[g] = make([]int, parts)
	}
	for i, r := range reads {
		p := labels[i]
		if p < 0 || int(p) >= parts {
			return nil, fmt.Errorf("taxonomy: read %d in partition %d outside [0,%d)", i, p, parts)
		}
		ref, ok := c.Classify(r.Seq)
		if !ok {
			continue
		}
		g := genusIdx[c.Ref(ref).Genus]
		d.Counts[g][p]++
	}
	return d, nil
}

// TopGenera returns the indexes of the n genera with the highest total
// classified read counts, descending (paper: the top ten pooled genera).
func (d *Distribution) TopGenera(n int) []int {
	type gt struct {
		g, total int
	}
	var all []gt
	for g := range d.Genera {
		t := 0
		for _, c := range d.Counts[g] {
			t += c
		}
		all = append(all, gt{g, t})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].total != all[j].total {
			return all[i].total > all[j].total
		}
		return all[i].g < all[j].g
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].g
	}
	return out
}

// Abundance is one genus's estimated share of the community.
type Abundance struct {
	Genus    string
	Phylum   string
	Reads    int
	Depth    float64 // reads * readLen / total reference length of the genus
	Fraction float64 // depth / sum of depths
}

// EstimateAbundance classifies the reads and converts per-genus read
// counts into depth-normalized abundance estimates (reads from a longer
// genome do not inflate its genus). Unclassified reads are ignored.
func EstimateAbundance(c *Classifier, reads []dna.Read) []Abundance {
	genusLen := map[string]int{}
	genusPhy := map[string]string{}
	for i := 0; i < c.NumRefs(); i++ {
		ref := c.Ref(i)
		genusLen[ref.Genus] += len(ref.Seq)
		genusPhy[ref.Genus] = ref.Phylum
	}
	counts := map[string]int{}
	bases := map[string]int{}
	for _, r := range reads {
		ref, ok := c.Classify(r.Seq)
		if !ok {
			continue
		}
		g := c.Ref(ref).Genus
		counts[g]++
		bases[g] += len(r.Seq)
	}
	var out []Abundance
	total := 0.0
	for g, n := range counts {
		depth := float64(bases[g]) / float64(genusLen[g])
		out = append(out, Abundance{Genus: g, Phylum: genusPhy[g], Reads: n, Depth: depth})
		total += depth
	}
	for i := range out {
		if total > 0 {
			out[i].Fraction = out[i].Depth / total
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Genus < out[j].Genus
	})
	return out
}

// PhylumCohesion measures whether same-phylum genera concentrate in the
// same partitions (the paper's qualitative Fig. 7 observation): it
// returns the mean cosine similarity of partition-fraction vectors for
// same-phylum genus pairs and for different-phylum pairs.
func (d *Distribution) PhylumCohesion() (same, diff float64) {
	frac := d.Fraction()
	cos := func(a, b []float64) float64 {
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 0
		}
		return dot / (math.Sqrt(na) * math.Sqrt(nb))
	}
	var sSum, dSum float64
	var sN, dN int
	for i := 0; i < len(d.Genera); i++ {
		for j := i + 1; j < len(d.Genera); j++ {
			c := cos(frac[i], frac[j])
			if d.Phyla[i] == d.Phyla[j] {
				sSum += c
				sN++
			} else {
				dSum += c
				dN++
			}
		}
	}
	if sN > 0 {
		same = sSum / float64(sN)
	}
	if dN > 0 {
		diff = dSum / float64(dN)
	}
	return same, diff
}
