package taxonomy

import (
	"math/rand"
	"testing"

	"focus/internal/dna"
	"focus/internal/simulate"
)

func randSeq(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func twoRefs() []Reference {
	return []Reference{
		{Name: "g1", Genus: "Alpha", Phylum: "P1", Seq: randSeq(80, 2000)},
		{Name: "g2", Genus: "Beta", Phylum: "P2", Seq: randSeq(81, 2000)},
	}
}

func TestClassifierBasics(t *testing.T) {
	refs := twoRefs()
	c, err := NewClassifier(refs, 21)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 21 || c.NumRefs() != 2 {
		t.Fatalf("k=%d refs=%d", c.K(), c.NumRefs())
	}
	// Reads drawn directly from each reference classify correctly.
	for ri, ref := range refs {
		for pos := 0; pos+100 <= len(ref.Seq); pos += 250 {
			got, ok := c.Classify(ref.Seq[pos : pos+100])
			if !ok || got != ri {
				t.Fatalf("read from ref %d at %d classified as (%d,%v)", ri, pos, got, ok)
			}
		}
	}
}

func TestClassifyReverseComplement(t *testing.T) {
	refs := twoRefs()
	c, err := NewClassifier(refs, 21)
	if err != nil {
		t.Fatal(err)
	}
	read := dna.ReverseComplement(refs[1].Seq[300:400])
	got, ok := c.Classify(read)
	if !ok || got != 1 {
		t.Errorf("rc read classified as (%d,%v), want (1,true)", got, ok)
	}
}

func TestClassifyUnknown(t *testing.T) {
	c, err := NewClassifier(twoRefs(), 21)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Classify(randSeq(99, 100)); ok {
		t.Error("random read classified")
	}
	if _, ok := c.Classify(nil); ok {
		t.Error("empty read classified")
	}
}

func TestSharedKmersAreAmbiguous(t *testing.T) {
	shared := randSeq(82, 500)
	refs := []Reference{
		{Name: "a", Genus: "A", Phylum: "P", Seq: shared},
		{Name: "b", Genus: "B", Phylum: "P", Seq: shared},
	}
	c, err := NewClassifier(refs, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Every k-mer is shared: no votes, unclassified.
	if _, ok := c.Classify(shared[100:200]); ok {
		t.Error("fully ambiguous read classified")
	}
}

func TestNewClassifierErrors(t *testing.T) {
	if _, err := NewClassifier(nil, 21); err == nil {
		t.Error("no refs accepted")
	}
	if _, err := NewClassifier(twoRefs(), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewClassifier(twoRefs(), 40); err == nil {
		t.Error("k=40 accepted")
	}
}

func buildCommunityReads(t *testing.T) (*simulate.Community, *simulate.ReadSet) {
	t.Helper()
	spec, err := simulate.PaperDataSet(2, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	com, err := simulate.BuildCommunity(spec)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{ReadLen: 100, Coverage: 3, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	return com, rs
}

func refsOf(com *simulate.Community) []Reference {
	var refs []Reference
	for _, g := range com.Genomes {
		refs = append(refs, Reference{Name: g.ID, Genus: g.Genus, Phylum: g.Phylum, Seq: g.Seq})
	}
	return refs
}

func TestClassifierOnSimulatedCommunity(t *testing.T) {
	com, rs := buildCommunityReads(t)
	c, err := NewClassifier(refsOf(com), 21)
	if err != nil {
		t.Fatal(err)
	}
	correct, classified := 0, 0
	for i, r := range rs.Reads {
		ref, ok := c.Classify(r.Seq)
		if !ok {
			continue
		}
		classified++
		if c.Ref(ref).Name == rs.Origins[i].GenomeID {
			correct++
		}
	}
	if classified < len(rs.Reads)*8/10 {
		t.Errorf("only %d/%d reads classified", classified, len(rs.Reads))
	}
	if correct < classified*9/10 {
		t.Errorf("accuracy %d/%d too low", correct, classified)
	}
}

func TestGenusDistribution(t *testing.T) {
	com, rs := buildCommunityReads(t)
	c, err := NewClassifier(refsOf(com), 21)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic partitioning: assign each read's node by its true genome,
	// two genomes per partition: strong concentration expected.
	parts := 5
	genomeIdx := map[string]int{}
	for i, g := range com.Genomes {
		genomeIdx[g.ID] = i
	}
	labels := make([]int32, len(rs.Reads))
	for i := range rs.Reads {
		labels[i] = int32(genomeIdx[rs.Origins[i].GenomeID] / 2)
	}
	d, err := GenusDistribution(c, rs.Reads, labels, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Genera) != 10 {
		t.Fatalf("%d genera", len(d.Genera))
	}
	frac := d.Fraction()
	for g, row := range frac {
		sum := 0.0
		mx := 0.0
		for _, f := range row {
			sum += f
			if f > mx {
				mx = f
			}
		}
		if sum > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("genus %d row sums to %v", g, sum)
		}
		// Each genus was pinned to one partition: its row must be
		// strongly concentrated.
		if sum > 0 && mx < 0.8 {
			t.Errorf("genus %s fraction max %v, want concentrated", d.Genera[g], mx)
		}
	}
	top := d.TopGenera(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	// Top genera have decreasing totals.
	tot := func(g int) int {
		s := 0
		for _, c := range d.Counts[g] {
			s += c
		}
		return s
	}
	if tot(top[0]) < tot(top[1]) || tot(top[1]) < tot(top[2]) {
		t.Errorf("top order wrong: %d %d %d", tot(top[0]), tot(top[1]), tot(top[2]))
	}
}

func TestGenusDistributionErrors(t *testing.T) {
	com, rs := buildCommunityReads(t)
	c, _ := NewClassifier(refsOf(com), 21)
	if _, err := GenusDistribution(c, rs.Reads, nil, 4); err == nil {
		t.Error("label mismatch accepted")
	}
	bad := make([]int32, len(rs.Reads))
	bad[0] = 99
	if _, err := GenusDistribution(c, rs.Reads, bad, 4); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestEstimateAbundance(t *testing.T) {
	com, rs := buildCommunityReads(t)
	c, err := NewClassifier(refsOf(com), 21)
	if err != nil {
		t.Fatal(err)
	}
	ab := EstimateAbundance(c, rs.Reads)
	if len(ab) == 0 {
		t.Fatal("no abundances")
	}
	sum := 0.0
	for i, a := range ab {
		if a.Fraction < 0 || a.Fraction > 1 || a.Depth <= 0 || a.Reads <= 0 {
			t.Fatalf("abundance %d invalid: %+v", i, a)
		}
		if i > 0 && a.Fraction > ab[i-1].Fraction {
			t.Fatal("abundances not sorted descending")
		}
		sum += a.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
	// D2's genera all have equal spec abundance: estimated fractions
	// should be roughly uniform (within 3x of 1/n).
	n := float64(len(ab))
	for _, a := range ab {
		if a.Fraction > 3/n || a.Fraction < 1/(3*n) {
			t.Errorf("genus %s fraction %.3f far from uniform 1/%d", a.Genus, a.Fraction, int(n))
		}
	}
}

func TestPhylumCohesion(t *testing.T) {
	// Hand-built distribution: same-phylum genera share partitions.
	d := &Distribution{
		Genera: []string{"A", "B", "C", "D"},
		Phyla:  []string{"P1", "P1", "P2", "P2"},
		Parts:  4,
		Counts: [][]int{
			{10, 10, 0, 0},
			{8, 12, 0, 0},
			{0, 0, 10, 10},
			{0, 0, 12, 8},
		},
	}
	same, diff := d.PhylumCohesion()
	if same <= diff {
		t.Errorf("same-phylum cohesion %v not above cross-phylum %v", same, diff)
	}
	if same < 0.9 {
		t.Errorf("same = %v", same)
	}
	if diff > 0.1 {
		t.Errorf("diff = %v", diff)
	}
}
