package preprocess

import (
	"strings"
	"testing"
	"testing/quick"

	"focus/internal/dna"
)

func qual(phreds ...int) []byte {
	q := make([]byte, len(phreds))
	for i, p := range phreds {
		q[i] = byte(33 + p)
	}
	return q
}

func TestQualityTrimKeepsHighQualityRead(t *testing.T) {
	r := dna.Read{Seq: []byte("ACGTACGTAC"), Qual: qual(40, 40, 40, 40, 40, 40, 40, 40, 40, 40)}
	keep, ok := QualityTrim(r, 4, 1, 20)
	if !ok || keep != 10 {
		t.Errorf("keep=%d ok=%v, want 10 true", keep, ok)
	}
}

func TestQualityTrimCutsLowTail(t *testing.T) {
	// Last 4 bases are junk (q=2); first window from the 3' end fails,
	// stepping left finds a window ending at 6 with high mean.
	r := dna.Read{
		Seq:  []byte("ACGTACGTAC"),
		Qual: qual(40, 40, 40, 40, 40, 40, 2, 2, 2, 2),
	}
	keep, ok := QualityTrim(r, 3, 1, 20)
	if !ok {
		t.Fatal("read dropped")
	}
	// Window [4,7) is the first (from the 3' end) whose mean exceeds 20;
	// the read is cut at its right edge.
	if keep != 7 {
		t.Errorf("keep = %d, want 7", keep)
	}
}

func TestQualityTrimDropsAllBadRead(t *testing.T) {
	r := dna.Read{Seq: []byte("ACGTAC"), Qual: qual(2, 2, 2, 2, 2, 2)}
	if _, ok := QualityTrim(r, 3, 1, 20); ok {
		t.Error("all-bad read kept")
	}
}

func TestQualityTrimStep(t *testing.T) {
	// With step 2 the window right edges visited are 10, 8, 6...
	r := dna.Read{
		Seq:  []byte("ACGTACGTAC"),
		Qual: qual(40, 40, 40, 40, 40, 40, 40, 2, 2, 2),
	}
	keep, ok := QualityTrim(r, 2, 2, 25)
	if !ok || keep != 6 {
		t.Errorf("keep=%d ok=%v, want 6 true", keep, ok)
	}
}

func TestQualityTrimNoQualities(t *testing.T) {
	r := dna.Read{Seq: []byte("ACGT")}
	keep, ok := QualityTrim(r, 2, 1, 20)
	if !ok || keep != 4 {
		t.Errorf("fasta read should pass through, got keep=%d ok=%v", keep, ok)
	}
}

func TestQualityTrimShortRead(t *testing.T) {
	r := dna.Read{Seq: []byte("AC"), Qual: qual(2, 2)}
	keep, ok := QualityTrim(r, 5, 1, 20)
	if !ok || keep != 2 {
		t.Errorf("short read keep=%d ok=%v, want unchanged", keep, ok)
	}
}

func TestRunFixedTrimming(t *testing.T) {
	reads := []dna.Read{{ID: "a", Seq: []byte("NNACGTACGTNN"), Qual: qual(40, 40, 40, 40, 40, 40, 40, 40, 40, 40, 40, 40)}}
	out, st, err := Run(reads, Config{Trim5: 2, Trim3: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0].Seq) != "ACGTACGT" {
		t.Fatalf("out = %+v", out)
	}
	if len(out[0].Qual) != 8 {
		t.Errorf("qual len = %d", len(out[0].Qual))
	}
	if st.BasesTrimmed != 4 || st.Kept != 1 || st.Output != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunDropsOvertrimmed(t *testing.T) {
	reads := []dna.Read{{ID: "a", Seq: []byte("ACGT")}}
	out, st, err := Run(reads, Config{Trim5: 3, Trim3: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st.Dropped != 1 {
		t.Errorf("out=%v stats=%+v", out, st)
	}
}

func TestRunMinLen(t *testing.T) {
	reads := []dna.Read{
		{ID: "short", Seq: []byte("ACGT")},
		{ID: "long", Seq: []byte("ACGTACGTACGT")},
	}
	out, st, err := Run(reads, Config{MinLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != "long" {
		t.Fatalf("out = %+v", out)
	}
	if st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunAddReverse(t *testing.T) {
	reads := []dna.Read{{ID: "a", Seq: []byte("AACG"), Qual: qual(10, 20, 30, 40)}}
	out, _, err := Run(reads, Config{AddReverse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d reads", len(out))
	}
	rc := out[1]
	if rc.ID != "a"+RCSuffix {
		t.Errorf("rc id = %q", rc.ID)
	}
	if string(rc.Seq) != "CGTT" {
		t.Errorf("rc seq = %q", rc.Seq)
	}
	// Qualities must be reversed alongside the bases.
	if rc.PhredQuality(0) != 40 || rc.PhredQuality(3) != 10 {
		t.Errorf("rc qual = %v", rc.Qual)
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	reads := []dna.Read{{ID: "a", Seq: []byte("ACGTACGT"), Qual: qual(40, 40, 40, 40, 40, 40, 40, 40)}}
	orig := string(reads[0].Seq)
	out, _, err := Run(reads, Config{Trim5: 1, AddReverse: true})
	if err != nil {
		t.Fatal(err)
	}
	out[0].Seq[0] = 'N'
	if string(reads[0].Seq) != orig {
		t.Error("input mutated")
	}
}

func TestRunNegativeTrim(t *testing.T) {
	if _, _, err := Run(nil, Config{Trim5: -1}); err == nil {
		t.Error("negative trim accepted")
	}
}

func TestRunEndToEndWithAdapterAndBadTail(t *testing.T) {
	// 5 adapter bases, 20 good bases, 5 junk bases.
	seq := "AGATC" + strings.Repeat("ACGT", 5) + "TTTTT"
	q := make([]int, 0, 30)
	for i := 0; i < 25; i++ {
		q = append(q, 38)
	}
	for i := 0; i < 5; i++ {
		q = append(q, 2)
	}
	reads := []dna.Read{{ID: "x", Seq: []byte(seq), Qual: qual(q...)}}
	out, st, err := Run(reads, Config{Trim5: 5, Window: 5, Step: 1, MinQuality: 35, MinLen: 10, AddReverse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d reads, want 2 (fwd+rc)", len(out))
	}
	if string(out[0].Seq) != strings.Repeat("ACGT", 5) {
		t.Errorf("trimmed seq = %q", out[0].Seq)
	}
	if st.BasesTrimmed != 10 {
		t.Errorf("BasesTrimmed = %d, want 10", st.BasesTrimmed)
	}
}

// TestRunQuick: invariants over random reads and configurations.
func TestRunQuick(t *testing.T) {
	f := func(raw [][]byte, trim5raw, trim3raw, windowRaw, minQraw uint8, addRC bool) bool {
		cfg := Config{
			Trim5:      int(trim5raw) % 8,
			Trim3:      int(trim3raw) % 8,
			Window:     int(windowRaw) % 12,
			Step:       1,
			MinQuality: float64(minQraw % 40),
			MinLen:     5,
			AddReverse: addRC,
		}
		var reads []dna.Read
		for i, r := range raw {
			n := len(r)
			if n == 0 {
				continue
			}
			seq := make([]byte, n)
			quals := make([]byte, n)
			for j, b := range r {
				seq[j] = "ACGT"[b&3]
				quals[j] = 33 + b%42
			}
			reads = append(reads, dna.Read{ID: string(rune('a' + i%26)), Seq: seq, Qual: quals})
		}
		out, st, err := Run(reads, cfg)
		if err != nil {
			return false
		}
		if st.Input != len(reads) || st.Output != len(out) {
			return false
		}
		if addRC && st.Output != 2*st.Kept {
			return false
		}
		if !addRC && st.Output != st.Kept {
			return false
		}
		for _, r := range out {
			if r.Len() < cfg.MinLen {
				return false
			}
			if dna.ValidateSeq(r.Seq) != nil {
				return false
			}
			if r.Qual != nil && len(r.Qual) != r.Len() {
				return false
			}
		}
		// RC pairs: out[2i+1] is the reverse complement of out[2i].
		if addRC {
			for i := 0; i+1 < len(out); i += 2 {
				rc := dna.ReverseComplement(out[i].Seq)
				if string(rc) != string(out[i+1].Seq) {
					return false
				}
				if out[i+1].ID != out[i].ID+RCSuffix {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	reads := make([]dna.Read, 10)
	subsets, err := Split(reads, 3)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{len(subsets[0]), len(subsets[1]), len(subsets[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	total := 0
	for _, s := range subsets {
		total += len(s)
	}
	if total != 10 {
		t.Errorf("total = %d", total)
	}
}

func TestSplitMoreSubsetsThanReads(t *testing.T) {
	subsets, err := Split(make([]dna.Read, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(subsets) != 5 {
		t.Fatalf("got %d subsets", len(subsets))
	}
	if len(subsets[0]) != 1 || len(subsets[1]) != 1 || len(subsets[4]) != 0 {
		t.Errorf("sizes = %d %d %d", len(subsets[0]), len(subsets[1]), len(subsets[4]))
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split(nil, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestRunValidatesInput: Run is the ingestion gate for programmatic input —
// malformed reads fail loudly with the read index and ID, before any
// trimming can mask them.
func TestRunValidatesInput(t *testing.T) {
	good := dna.Read{ID: "ok", Seq: []byte("ACGTACGT"), Qual: qual(30, 30, 30, 30, 30, 30, 30, 30)}
	cases := []struct {
		name string
		bad  dna.Read
		want []string
	}{
		{"invalid base", dna.Read{ID: "badbase", Seq: []byte("ACXT")}, []string{"read 1", `"badbase"`, "invalid base"}},
		{"lowercase base", dna.Read{ID: "lower", Seq: []byte("acgt")}, []string{"read 1", `"lower"`, "invalid base"}},
		{"qual mismatch", dna.Read{ID: "shortq", Seq: []byte("ACGT"), Qual: qual(30, 30)}, []string{"read 1", `"shortq"`, "quality length 2 != sequence length 4"}},
	}
	for _, tc := range cases {
		_, _, err := Run([]dna.Read{good, tc.bad}, Config{})
		if err == nil {
			t.Errorf("%s: Run accepted malformed read", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, w)
			}
		}
	}
	// The gate passes clean input through untouched.
	out, st, err := Run([]dna.Read{good}, Config{})
	if err != nil || len(out) != 1 || st.Kept != 1 {
		t.Fatalf("clean input: out=%d stats=%+v err=%v", len(out), st, err)
	}
}
