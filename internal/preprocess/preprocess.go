// Package preprocess implements the Focus read preprocessing stage
// (paper §II.A): fixed-length 5'/3' end trimming, sliding-window quality
// trimming from the 3' end, reverse-complement augmentation of the read
// set, and splitting into subsets for parallel alignment.
package preprocess

import (
	"fmt"

	"focus/internal/dna"
)

// RCSuffix is appended to a read's ID to name its reverse complement in
// the augmented read set.
const RCSuffix = "~rc"

// Config controls preprocessing. Zero values disable the corresponding
// step, except Window/Step/MinQuality which act together (quality trimming
// runs only if Window > 0).
type Config struct {
	Trim5 int // fixed bases removed from the 5' end (adapters/tags)
	Trim3 int // fixed bases removed from the 3' end

	// Sliding-window quality trimming: a window of length Window slides
	// from the 3' end toward the 5' end in steps of Step. At the first
	// position where the window's mean Phred quality exceeds MinQuality,
	// the read is cut at the window's right end (everything 3' of it is
	// dropped). If no window qualifies the whole read is dropped.
	Window     int
	Step       int
	MinQuality float64

	MinLen     int  // reads shorter than this after trimming are dropped
	AddReverse bool // append the reverse complement of each kept read
}

// Stats reports what preprocessing did.
type Stats struct {
	Input        int // reads in
	Dropped      int // reads dropped (too short / all low quality)
	Kept         int // forward reads kept
	Output       int // total reads out (incl. reverse complements)
	BasesTrimmed int // bases removed by all trimming steps
}

// QualityTrim applies the sliding-window rule to a single read and returns
// the kept prefix length. The second result is false when no window meets
// the threshold (the read should be dropped).
func QualityTrim(r dna.Read, window, step int, minQ float64) (keep int, ok bool) {
	if window <= 0 || r.Qual == nil || len(r.Seq) < window {
		return len(r.Seq), true
	}
	if step <= 0 {
		step = 1
	}
	for right := len(r.Seq); right >= window; right -= step {
		sum := 0
		for i := right - window; i < right; i++ {
			sum += r.PhredQuality(i)
		}
		if float64(sum)/float64(window) > minQ {
			return right, true
		}
	}
	return 0, false
}

// Run preprocesses the read set per the config. Reads are deep-copied; the
// input slice is not modified.
//
// Run is the pipeline's ingestion gate: every read is validated before any
// trimming, so malformed programmatic input (the file readers validate on
// parse, but API callers can hand Run anything) fails loudly with the read
// index and ID instead of corrupting the overlap stage downstream.
func Run(reads []dna.Read, cfg Config) ([]dna.Read, Stats, error) {
	if cfg.Trim5 < 0 || cfg.Trim3 < 0 {
		return nil, Stats{}, fmt.Errorf("preprocess: negative trim lengths")
	}
	st := Stats{Input: len(reads)}
	out := make([]dna.Read, 0, len(reads)*2)
	for i, r := range reads {
		if err := dna.ValidateSeq(r.Seq); err != nil {
			return nil, Stats{}, fmt.Errorf("preprocess: read %d (%q): %w", i, r.ID, err)
		}
		if r.Qual != nil && len(r.Qual) != len(r.Seq) {
			return nil, Stats{}, fmt.Errorf("preprocess: read %d (%q): quality length %d != sequence length %d",
				i, r.ID, len(r.Qual), len(r.Seq))
		}
		orig := r.Len()
		// Fixed end trimming.
		if cfg.Trim5+cfg.Trim3 >= r.Len() {
			st.Dropped++
			st.BasesTrimmed += orig
			continue
		}
		t := dna.Read{
			ID:  r.ID,
			Seq: append([]byte(nil), r.Seq[cfg.Trim5:r.Len()-cfg.Trim3]...),
		}
		if r.Qual != nil {
			t.Qual = append([]byte(nil), r.Qual[cfg.Trim5:len(r.Qual)-cfg.Trim3]...)
		}
		// Quality trimming from the 3' end.
		if cfg.Window > 0 {
			keep, ok := QualityTrim(t, cfg.Window, cfg.Step, cfg.MinQuality)
			if !ok {
				st.Dropped++
				st.BasesTrimmed += orig
				continue
			}
			t.Seq = t.Seq[:keep]
			if t.Qual != nil {
				t.Qual = t.Qual[:keep]
			}
		}
		if t.Len() < cfg.MinLen || t.Len() == 0 {
			st.Dropped++
			st.BasesTrimmed += orig
			continue
		}
		st.BasesTrimmed += orig - t.Len()
		st.Kept++
		out = append(out, t)
		if cfg.AddReverse {
			rc := dna.Read{ID: t.ID + RCSuffix, Seq: dna.ReverseComplement(t.Seq)}
			if t.Qual != nil {
				rc.Qual = make([]byte, len(t.Qual))
				for i, q := range t.Qual {
					rc.Qual[len(t.Qual)-1-i] = q
				}
			}
			out = append(out, rc)
		}
	}
	st.Output = len(out)
	return out, st, nil
}

// Split partitions reads into n contiguous subsets of near-equal size.
// Subsets may be empty when n exceeds the read count.
func Split(reads []dna.Read, n int) ([][]dna.Read, error) {
	if n <= 0 {
		return nil, fmt.Errorf("preprocess: cannot split into %d subsets", n)
	}
	out := make([][]dna.Read, n)
	base := len(reads) / n
	rem := len(reads) % n
	at := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = reads[at : at+size]
		at += size
	}
	return out, nil
}
