package dna

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string, gz bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if gz {
		w := gzip.NewWriter(f)
		if _, err := w.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := f.WriteString(content); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestReadsFromFileFormats(t *testing.T) {
	fasta := ">a\nACGT\n>b\nTTTT\n"
	fastq := "@a\nACGT\n+\nIIII\n"
	cases := []struct {
		name    string
		content string
		gz      bool
		want    int
	}{
		{"x.fasta", fasta, false, 2},
		{"x.fa", fasta, false, 2},
		{"x.fna", fasta, false, 2},
		{"x.fastq", fastq, false, 1},
		{"x.fq", fastq, false, 1},
		{"x.fasta.gz", fasta, true, 2},
		{"x.fastq.gz", fastq, true, 1},
	}
	for _, c := range cases {
		path := writeFile(t, c.name, c.content, c.gz)
		reads, err := ReadsFromFile(path)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(reads) != c.want {
			t.Errorf("%s: got %d reads, want %d", c.name, len(reads), c.want)
		}
	}
}

func TestReadsFromFileErrors(t *testing.T) {
	if _, err := ReadsFromFile("/nonexistent/reads.fastq"); err == nil {
		t.Error("missing file accepted")
	}
	path := writeFile(t, "x.txt", ">a\nACGT\n", false)
	if _, err := ReadsFromFile(path); err == nil {
		t.Error("unknown extension accepted")
	}
	bad := writeFile(t, "y.fastq.gz", "not gzip", false)
	if _, err := ReadsFromFile(bad); err == nil {
		t.Error("non-gzip content with .gz extension accepted")
	}
}
