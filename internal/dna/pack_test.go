package dna

import (
	"bytes"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, seq []byte) {
	t.Helper()
	packed := Pack(nil, seq)
	got, rest, err := Unpack(nil, packed)
	if err != nil {
		t.Fatalf("Unpack(%q): %v", seq, err)
	}
	if len(rest) != 0 {
		t.Fatalf("Unpack(%q): %d trailing bytes", seq, len(rest))
	}
	if !bytes.Equal(got, seq) {
		t.Fatalf("round trip of %q gave %q", seq, got)
	}
}

func TestPackRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		[]byte("A"),
		[]byte("ACGT"),
		[]byte("ACGTACGTACGTACG"), // non-multiple-of-4 tail
		[]byte("NNNN"),            // all escapes
		[]byte("ACGNNGTA"),
		[]byte("acgt"),          // lowercase is escaped, not canonicalized
		[]byte("AC#GT#A"),       // suffix-array separator bytes
		[]byte("NACGT"),         // escape at position 0
		[]byte("ACGTN"),         // escape at the last position
		[]byte{0, 255, 'A', 17}, // arbitrary bytes
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestPackRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("ACGTACGTACGTACGTN#acgt") // mostly ACGT, some escapes
	for i := 0; i < 1000; i++ {
		n := rng.Intn(300)
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = alphabet[rng.Intn(len(alphabet))]
		}
		roundTrip(t, seq)
	}
}

// TestPackAppend checks both functions' append semantics: packing after
// existing bytes, unpacking onto an existing destination, and consuming
// one of several concatenated sequences.
func TestPackAppend(t *testing.T) {
	a, b := []byte("ACGTN"), []byte("GGC")
	buf := Pack(Pack(nil, a), b)
	dst := []byte("prefix")
	dst, rest, err := Unpack(dst, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(dst) != "prefixACGTN" {
		t.Fatalf("append-unpack gave %q", dst)
	}
	dst, rest, err = Unpack(dst, rest)
	if err != nil {
		t.Fatal(err)
	}
	if string(dst) != "prefixACGTNGGC" || len(rest) != 0 {
		t.Fatalf("second unpack gave %q with %d rest bytes", dst, len(rest))
	}
}

func TestPackSize(t *testing.T) {
	seq := bytes.Repeat([]byte("ACGT"), 100)
	packed := Pack(nil, seq)
	if len(packed) > PackedSize(len(seq)) {
		t.Fatalf("packed %d bases into %d bytes, bound %d", len(seq), len(packed), PackedSize(len(seq)))
	}
	// ~4x smaller than raw for clean sequence data.
	if len(packed) >= len(seq)/3 {
		t.Fatalf("packed size %d not compact for %d bases", len(packed), len(seq))
	}
}

func TestUnpackTruncated(t *testing.T) {
	full := Pack(nil, []byte("ACGTNACGTACGTACGT"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Unpack(nil, full[:cut]); err == nil {
			t.Fatalf("Unpack of %d/%d bytes succeeded", cut, len(full))
		}
	}
}

func BenchmarkPack(b *testing.B) {
	seq := bytes.Repeat([]byte("ACGTGGCTA"), 100)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Pack(buf[:0], seq)
	}
}

func BenchmarkUnpack(b *testing.B) {
	packed := Pack(nil, bytes.Repeat([]byte("ACGTGGCTA"), 100))
	var dst []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, _, err := Unpack(dst[:0], packed)
		if err != nil {
			b.Fatal(err)
		}
		dst = d
	}
}
