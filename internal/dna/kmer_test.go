package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackKmer(t *testing.T) {
	km, ok := PackKmer([]byte("ACGT"), 4)
	if !ok {
		t.Fatal("PackKmer(ACGT,4) not ok")
	}
	// A=00 C=01 G=10 T=11 -> 0b00011011 = 27
	if km != 27 {
		t.Errorf("PackKmer(ACGT,4) = %d, want 27", km)
	}
	if km.String(4) != "ACGT" {
		t.Errorf("String = %q, want ACGT", km.String(4))
	}
}

func TestPackKmerRejects(t *testing.T) {
	if _, ok := PackKmer([]byte("ACNT"), 4); ok {
		t.Error("PackKmer with N succeeded")
	}
	if _, ok := PackKmer([]byte("AC"), 4); ok {
		t.Error("PackKmer with short seq succeeded")
	}
	if _, ok := PackKmer([]byte("ACGT"), 0); ok {
		t.Error("PackKmer with k=0 succeeded")
	}
	if _, ok := PackKmer(make([]byte, 40), 33); ok {
		t.Error("PackKmer with k=33 succeeded")
	}
}

func TestKmerStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 15, 16, 31, 32} {
		for trial := 0; trial < 50; trial++ {
			seq := RandomSeq(rng, k)
			km, ok := PackKmer(seq, k)
			if !ok {
				t.Fatalf("pack failed for %q", seq)
			}
			if got := km.String(k); got != string(seq) {
				t.Fatalf("k=%d: round trip %q -> %q", k, seq, got)
			}
		}
	}
}

func TestKmerReverseComplementMatchesSequenceRC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 5, 16, 32} {
		for trial := 0; trial < 50; trial++ {
			seq := RandomSeq(rng, k)
			km, _ := PackKmer(seq, k)
			want, _ := PackKmer(ReverseComplement(seq), k)
			if got := km.ReverseComplement(k); got != want {
				t.Fatalf("k=%d seq=%q: rc=%v want %v", k, seq, got.String(k), want.String(k))
			}
		}
	}
}

func TestKmerCanonicalProperties(t *testing.T) {
	f := func(raw []byte, kraw uint8) bool {
		k := int(kraw)%MaxK + 1
		if len(raw) < k {
			return true
		}
		seq := make([]byte, k)
		for i := 0; i < k; i++ {
			seq[i] = codeBase[raw[i]&3]
		}
		km, _ := PackKmer(seq, k)
		can := km.Canonical(k)
		// Canonical is idempotent and equal for a k-mer and its RC.
		return can.Canonical(k) == can && km.ReverseComplement(k).Canonical(k) == can &&
			(can == km || can == km.ReverseComplement(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKmerIterMatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{3, 8, 21, 32} {
		seq := RandomSeq(rng, 200)
		it := NewKmerIter(seq, k)
		for want := 0; want+k <= len(seq); want++ {
			km, off, ok := it.Next()
			if !ok {
				t.Fatalf("k=%d: iterator ended early at offset %d", k, want)
			}
			if off != want {
				t.Fatalf("k=%d: offset %d, want %d", k, off, want)
			}
			exp, _ := PackKmer(seq[want:], k)
			if km != exp {
				t.Fatalf("k=%d off=%d: kmer %v, want %v", k, off, km.String(k), exp.String(k))
			}
		}
		if _, _, ok := it.Next(); ok {
			t.Fatalf("k=%d: iterator did not end", k)
		}
	}
}

func TestKmerIterSkipsN(t *testing.T) {
	seq := []byte("ACGTNACGT")
	it := NewKmerIter(seq, 3)
	var offsets []int
	for {
		_, off, ok := it.Next()
		if !ok {
			break
		}
		offsets = append(offsets, off)
	}
	want := []int{0, 1, 5, 6}
	if len(offsets) != len(want) {
		t.Fatalf("offsets = %v, want %v", offsets, want)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offsets, want)
		}
	}
}

func TestCountKmers(t *testing.T) {
	if n := CountKmers([]byte("ACGTACGT"), 4); n != 5 {
		t.Errorf("CountKmers = %d, want 5", n)
	}
	if n := CountKmers([]byte("ACNTA"), 2); n != 2 {
		t.Errorf("CountKmers with N = %d, want 2", n)
	}
	if n := CountKmers([]byte("AC"), 4); n != 0 {
		t.Errorf("CountKmers short = %d, want 0", n)
	}
}

func TestNewKmerIterPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewKmerIter(k=%d) did not panic", k)
				}
			}()
			NewKmerIter([]byte("ACGT"), k)
		}()
	}
}

// TestForEachKmerMatchesIter checks the callback enumerator against the
// iterator on mixed sequences.
func TestForEachKmerMatchesIter(t *testing.T) {
	seq := []byte("ACGTNACGTTGCA#GGGTTT")
	k := 3
	var got []struct {
		km  Kmer
		off int
	}
	ForEachKmer(seq, k, func(km Kmer, off int) {
		got = append(got, struct {
			km  Kmer
			off int
		}{km, off})
	})
	it := NewKmerIter(seq, k)
	i := 0
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		if i >= len(got) || got[i].km != km || got[i].off != off {
			t.Fatalf("entry %d mismatch", i)
		}
		i++
	}
	if i != len(got) {
		t.Fatalf("ForEachKmer yielded %d k-mers, iterator %d", len(got), i)
	}
}

// TestForEachKmerSeparatorsFuzz is a fuzz-style check of packed-k-mer
// enumeration around '#' separators (the overlap indexer concatenates
// reads with '#'): against a naive PackKmer-per-window reference, no
// window spanning a separator or N may ever be emitted.
func TestForEachKmerSeparatorsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("ACGTN#")
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(MaxK)
		n := rng.Intn(120)
		seq := make([]byte, n)
		for i := range seq {
			// Bias toward real bases with occasional separators/Ns.
			if rng.Intn(8) == 0 {
				seq[i] = alphabet[4+rng.Intn(2)]
			} else {
				seq[i] = alphabet[rng.Intn(4)]
			}
		}
		type ko struct {
			km  Kmer
			off int
		}
		var got []ko
		ForEachKmer(seq, k, func(km Kmer, off int) {
			got = append(got, ko{km, off})
		})
		var want []ko
		for off := 0; off+k <= len(seq); off++ {
			if km, ok := PackKmer(seq[off:off+k], k); ok {
				want = append(want, ko{km, off})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial=%d k=%d seq=%q: %d k-mers, want %d", trial, k, seq, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial=%d k=%d entry %d: %+v, want %+v", trial, k, i, got[i], want[i])
			}
		}
	}
}

func TestKmerAppendBytes(t *testing.T) {
	km, ok := PackKmer([]byte("GATTACA"), 7)
	if !ok {
		t.Fatal("pack failed")
	}
	buf := km.AppendBytes([]byte("x"), 7)
	if string(buf) != "xGATTACA" {
		t.Errorf("AppendBytes = %q", buf)
	}
	// Reusing the buffer must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		buf = km.AppendBytes(buf[:1], 7)
	})
	if allocs != 0 {
		t.Errorf("AppendBytes allocated %v times per run", allocs)
	}
	if km.String(7) != "GATTACA" {
		t.Errorf("String = %q", km.String(7))
	}
}
