package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Read is a single sequencing read (or any named sequence). Qual is nil for
// FASTA input and holds raw Phred+33 bytes, one per base, for FASTQ input.
type Read struct {
	ID   string
	Seq  []byte
	Qual []byte
}

// Clone returns a deep copy of the read.
func (r Read) Clone() Read {
	c := Read{ID: r.ID, Seq: append([]byte(nil), r.Seq...)}
	if r.Qual != nil {
		c.Qual = append([]byte(nil), r.Qual...)
	}
	return c
}

// Len returns the read length in bases.
func (r Read) Len() int { return len(r.Seq) }

// PhredQuality returns the quality score of base i (0 if no qualities).
func (r Read) PhredQuality(i int) int {
	if r.Qual == nil {
		return 0
	}
	return int(r.Qual[i]) - 33
}

// foldUpper upper-cases a sequence in place and validates it.
func foldUpper(seq []byte) error {
	for i, b := range seq {
		if b >= 'a' && b <= 'z' {
			b -= 'a' - 'A'
			seq[i] = b
		}
		if !ValidBase(b) {
			return fmt.Errorf("invalid base %q at position %d", b, i)
		}
	}
	return nil
}

// ReadFASTA parses FASTA records from r. Multi-line sequences are joined.
func ReadFASTA(r io.Reader) ([]Read, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var reads []Read
	var cur *Read
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimRight(sc.Bytes(), "\r\n \t")
		if len(text) == 0 {
			continue
		}
		if text[0] == '>' {
			id := strings.Fields(string(text[1:]))
			if len(id) == 0 {
				return nil, fmt.Errorf("dna: fasta line %d: empty header", line)
			}
			reads = append(reads, Read{ID: id[0]})
			cur = &reads[len(reads)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dna: fasta line %d: sequence before header", line)
		}
		seq := append([]byte(nil), text...)
		if err := foldUpper(seq); err != nil {
			return nil, fmt.Errorf("dna: fasta line %d: %v", line, err)
		}
		cur.Seq = append(cur.Seq, seq...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: fasta: %w", err)
	}
	return reads, nil
}

// WriteFASTA writes reads in FASTA format, wrapping sequence lines at width
// (or no wrapping if width <= 0).
func WriteFASTA(w io.Writer, reads []Read, width int) error {
	bw := bufio.NewWriter(w)
	for _, r := range reads {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.ID); err != nil {
			return err
		}
		seq := r.Seq
		if width <= 0 {
			width = len(seq)
		}
		for len(seq) > 0 {
			n := width
			if n > len(seq) {
				n = len(seq)
			}
			if _, err := bw.Write(seq[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			seq = seq[n:]
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses FASTQ records from r. Only the strict 4-line-per-record
// layout is supported (the layout emitted by Illumina pipelines and by this
// package's writer). CRLF line endings are accepted. Malformed input —
// truncated records, non-'@' headers, empty sequences, length-mismatched
// quality strings, non-ACGTN bases, out-of-range quality bytes — is an
// error naming the offending record and line, never a silently skipped or
// half-parsed read.
func ReadFASTQ(r io.Reader) ([]Read, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var reads []Read
	line, rec := 0, 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			line++
			t := bytes.TrimRight(sc.Bytes(), "\r\n")
			return t, true
		}
		return nil, false
	}
	bad := func(format string, a ...interface{}) error {
		return fmt.Errorf("dna: fastq record %d (line %d): %s", rec, line, fmt.Sprintf(format, a...))
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if len(hdr) == 0 {
			continue
		}
		rec++
		if hdr[0] != '@' {
			return nil, bad("expected '@', got %q", hdr[0])
		}
		id := strings.Fields(string(hdr[1:]))
		if len(id) == 0 {
			return nil, bad("empty header")
		}
		seq, ok := next()
		if !ok {
			return nil, bad("truncated record (missing sequence)")
		}
		if len(seq) == 0 {
			return nil, bad("empty sequence")
		}
		seqCopy := append([]byte(nil), seq...)
		if err := foldUpper(seqCopy); err != nil {
			return nil, bad("%v", err)
		}
		plus, ok := next()
		if !ok {
			return nil, bad("truncated record (missing '+' separator)")
		}
		if len(plus) == 0 || plus[0] != '+' {
			return nil, bad("expected '+' separator, got %q", plus)
		}
		qual, ok := next()
		if !ok {
			return nil, bad("truncated record (missing quality)")
		}
		if len(qual) != len(seqCopy) {
			return nil, bad("quality length %d != sequence length %d", len(qual), len(seqCopy))
		}
		for i, q := range qual {
			if q < 33 || q > 126 {
				return nil, bad("invalid quality byte %d at position %d", q, i)
			}
		}
		reads = append(reads, Read{ID: id[0], Seq: seqCopy, Qual: append([]byte(nil), qual...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: fastq record %d (line %d): %w", rec, line, err)
	}
	return reads, nil
}

// WriteFASTQ writes reads in 4-line FASTQ format. Reads without qualities
// are written with a constant 'I' (Phred 40) quality string.
func WriteFASTQ(w io.Writer, reads []Read) error {
	bw := bufio.NewWriter(w)
	for _, r := range reads {
		qual := r.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(r.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
