package dna

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadFASTA(t *testing.T) {
	in := ">r1 some description\nACGT\nacgt\n\n>r2\nNNNA\n"
	reads, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Fatalf("got %d reads, want 2", len(reads))
	}
	if reads[0].ID != "r1" || string(reads[0].Seq) != "ACGTACGT" {
		t.Errorf("read 0 = %+v", reads[0])
	}
	if reads[1].ID != "r2" || string(reads[1].Seq) != "NNNA" {
		t.Errorf("read 1 = %+v", reads[1])
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",      // sequence before header
		">r1\nACGX\n", // invalid base
		"> \nACGT\n",  // empty header
	}
	for _, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in)); err == nil {
			t.Errorf("ReadFASTA(%q) = nil error", in)
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var reads []Read
	for i := 0; i < 20; i++ {
		reads = append(reads, Read{ID: "read" + string(rune('A'+i)), Seq: RandomSeq(rng, 1+rng.Intn(300))})
	}
	for _, width := range []int{0, 1, 60, 1000} {
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, reads, width); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(reads) {
			t.Fatalf("width %d: got %d reads, want %d", width, len(got), len(reads))
		}
		for i := range reads {
			if got[i].ID != reads[i].ID || !bytes.Equal(got[i].Seq, reads[i].Seq) {
				t.Fatalf("width %d read %d: %+v != %+v", width, i, got[i], reads[i])
			}
		}
	}
}

func TestReadFASTQ(t *testing.T) {
	in := "@r1 desc\nACGT\n+\nIIII\n@r2\nNA\n+anything\n!~\n"
	reads, err := ReadFASTQ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Fatalf("got %d reads, want 2", len(reads))
	}
	if reads[0].ID != "r1" || string(reads[0].Seq) != "ACGT" || string(reads[0].Qual) != "IIII" {
		t.Errorf("read 0 = %+v", reads[0])
	}
	if reads[0].PhredQuality(0) != 40 {
		t.Errorf("PhredQuality = %d, want 40", reads[0].PhredQuality(0))
	}
	if reads[1].PhredQuality(0) != 0 {
		t.Errorf("PhredQuality('!') = %d, want 0", reads[1].PhredQuality(0))
	}
}

func TestReadFASTQErrors(t *testing.T) {
	// One valid record precedes each malformed one so the error must name
	// record 2 and the right line, not just "somewhere in the file".
	const ok = "@good\nACGT\n+\nIIII\n"
	cases := []struct {
		name string
		in   string
		want []string // substrings the error must carry
	}{
		{"bad header", ok + "r2\nACGT\n+\nIIII\n", []string{"record 2", "line 5", "'@'"}},
		{"empty header", ok + "@\nACGT\n+\nIIII\n", []string{"record 2", "line 5", "empty header"}},
		{"truncated seq", ok + "@r2\n", []string{"record 2", "line 5", "missing sequence"}},
		{"empty seq", ok + "@r2\n\n+\n\n", []string{"record 2", "line 6", "empty sequence"}},
		{"bad sep", ok + "@r2\nACGT\nX\nIIII\n", []string{"record 2", "line 7", "'+' separator"}},
		{"truncated sep", ok + "@r2\nACGT\n", []string{"record 2", "line 6", "missing '+' separator"}},
		{"truncated qual", ok + "@r2\nACGT\n+\n", []string{"record 2", "line 7", "missing quality"}},
		{"qual length", ok + "@r2\nACGT\n+\nIII\n", []string{"record 2", "line 8", "quality length 3 != sequence length 4"}},
		{"bad base", ok + "@r2\nACGZ\n+\nIIII\n", []string{"record 2", "line 6", "invalid base"}},
		{"bad qual byte", ok + "@r2\nACGT\n+\nII\x1fI\n", []string{"record 2", "line 8", "invalid quality byte"}},
	}
	for _, tc := range cases {
		_, err := ReadFASTQ(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ReadFASTQ(%q) = nil error", tc.name, tc.in)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, w)
			}
		}
	}
}

func TestReadFASTQCRLF(t *testing.T) {
	in := "@r1 desc\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nNA\r\n+\r\n!~\r\n"
	reads, err := ReadFASTQ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 || string(reads[0].Seq) != "ACGT" || string(reads[1].Qual) != "!~" {
		t.Fatalf("CRLF parse: %+v", reads)
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var reads []Read
	for i := 0; i < 20; i++ {
		n := 1 + rng.Intn(150)
		qual := make([]byte, n)
		for j := range qual {
			qual[j] = byte(33 + rng.Intn(42))
		}
		reads = append(reads, Read{ID: "q" + string(rune('A'+i)), Seq: RandomSeq(rng, n), Qual: qual})
	}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, reads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reads) {
		t.Fatalf("got %d reads, want %d", len(got), len(reads))
	}
	for i := range reads {
		if got[i].ID != reads[i].ID || !bytes.Equal(got[i].Seq, reads[i].Seq) || !bytes.Equal(got[i].Qual, reads[i].Qual) {
			t.Fatalf("read %d mismatch", i)
		}
	}
}

func TestWriteFASTQFillsQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, []Read{{ID: "x", Seq: []byte("ACGT")}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Qual) != "IIII" {
		t.Errorf("qual = %q, want IIII", got[0].Qual)
	}
}

func TestReadClone(t *testing.T) {
	r := Read{ID: "a", Seq: []byte("ACGT"), Qual: []byte("IIII")}
	c := r.Clone()
	c.Seq[0] = 'T'
	c.Qual[0] = '!'
	if r.Seq[0] != 'A' || r.Qual[0] != 'I' {
		t.Error("Clone shares storage with original")
	}
}
