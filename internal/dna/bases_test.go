package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidBase(t *testing.T) {
	for _, b := range []byte("ACGTN") {
		if !ValidBase(b) {
			t.Errorf("ValidBase(%q) = false, want true", b)
		}
	}
	for _, b := range []byte("acgtnXYZ @0-") {
		if ValidBase(b) {
			t.Errorf("ValidBase(%q) = true, want false", b)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
	for b, want := range pairs {
		if got := Complement(b); got != want {
			t.Errorf("Complement(%q) = %q, want %q", b, got, want)
		}
	}
}

func TestComplementPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Complement('X') did not panic")
		}
	}()
	Complement('X')
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"AC", "GT"},
		{"ACGT", "ACGT"},
		{"AACGTN", "NACGTT"},
		{"GATTACA", "TGTAATC"},
	}
	for _, c := range cases {
		if got := ReverseComplement([]byte(c.in)); string(got) != c.want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReverseComplementInPlaceMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		seq := RandomSeq(rng, rng.Intn(64))
		want := ReverseComplement(seq)
		got := append([]byte(nil), seq...)
		ReverseComplementInPlace(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("in-place rc of %q = %q, want %q", seq, got, want)
		}
	}
}

// RandomSeq returns a random ACGT sequence of length n (test helper, shared
// across this package's tests).
func RandomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = codeBase[rng.Intn(4)]
	}
	return s
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = codeBase[b&3]
		}
		return bytes.Equal(ReverseComplement(ReverseComplement(seq)), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidateSeq(t *testing.T) {
	if err := ValidateSeq([]byte("ACGTNACGT")); err != nil {
		t.Errorf("ValidateSeq(valid) = %v", err)
	}
	if err := ValidateSeq([]byte("ACGX")); err == nil {
		t.Error("ValidateSeq(ACGX) = nil, want error")
	}
}

func TestBaseCodeRoundTrip(t *testing.T) {
	for _, b := range []byte("ACGT") {
		c, ok := BaseCode(b)
		if !ok {
			t.Fatalf("BaseCode(%q) not ok", b)
		}
		if CodeBase(c) != b {
			t.Errorf("CodeBase(BaseCode(%q)) = %q", b, CodeBase(c))
		}
	}
	if _, ok := BaseCode('N'); ok {
		t.Error("BaseCode('N') ok, want not ok")
	}
}

func TestGC(t *testing.T) {
	cases := []struct {
		seq  string
		want float64
	}{
		{"", 0},
		{"NNN", 0},
		{"GGCC", 1},
		{"AATT", 0},
		{"ACGT", 0.5},
		{"ACGTNN", 0.5},
	}
	for _, c := range cases {
		if got := GC([]byte(c.seq)); got != c.want {
			t.Errorf("GC(%q) = %v, want %v", c.seq, got, c.want)
		}
	}
}
