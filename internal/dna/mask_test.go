package dna

import "testing"

func TestRepeatMaskedBoundary(t *testing.T) {
	cases := []struct {
		occ, cap int
		want     bool
	}{
		{0, 4, false},
		{3, 4, false},
		{4, 4, false}, // exactly at the cap is kept
		{5, 4, true},  // strictly above is masked
		{1000, 4, true},
		{1000, 0, false},  // cap 0 disables masking
		{1000, -1, false}, // negative caps disable masking too
	}
	for _, c := range cases {
		if got := RepeatMasked(c.occ, c.cap); got != c.want {
			t.Fatalf("RepeatMasked(%d, %d) = %v, want %v", c.occ, c.cap, got, c.want)
		}
	}
}
