package dna

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadsFromFile loads reads from a FASTA or FASTQ file, optionally
// gzip-compressed, dispatching on the file extension:
// .fasta/.fa/.fna and .fastq/.fq, each with an optional .gz suffix.
func ReadsFromFile(path string) ([]Read, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	name := path
	var r io.Reader = f
	if strings.HasSuffix(name, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dna: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
		name = strings.TrimSuffix(name, ".gz")
	}
	switch {
	case strings.HasSuffix(name, ".fastq"), strings.HasSuffix(name, ".fq"):
		return ReadFASTQ(r)
	case strings.HasSuffix(name, ".fasta"), strings.HasSuffix(name, ".fa"), strings.HasSuffix(name, ".fna"):
		return ReadFASTA(r)
	default:
		return nil, fmt.Errorf("dna: %s: unknown extension (want .fasta/.fa/.fna/.fastq/.fq[.gz])", path)
	}
}
