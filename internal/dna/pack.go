package dna

import (
	"encoding/binary"
	"fmt"
)

// This file implements the wire representation of DNA sequences: 2 bits
// per base with an escape plane for bytes outside {A,C,G,T}. The
// distributed substrate ships read sequences and node contigs with it
// (see DESIGN.md §10), cutting sequence payloads ~4x versus the
// 1-byte-per-base encoding gob uses.
//
// Layout of one packed sequence:
//
//	uvarint n          — number of bases
//	uvarint x          — number of escaped positions
//	x × (uvarint gap,  — position deltas (first is the absolute position,
//	     byte raw)        subsequent are gaps from the previous position),
//	                      each followed by the raw escaped byte
//	ceil(n/4) bytes    — 2-bit codes, 4 bases per byte, little-endian
//	                      within the byte (base i in bits 2*(i%4));
//	                      escaped positions carry code 0
//
// Any []byte round-trips exactly — N bases, the '#' separator of the
// suffix-array text, lower case, arbitrary bytes — escapes are just
// increasingly expensive (2 bytes + gap varint each), so the format is
// only compact for mostly-ACGT content, which read and contig payloads
// are.

// PackedSize returns an upper bound on the packed size of an all-ACGT
// sequence of n bases (escapes add to it).
func PackedSize(n int) int {
	return binary.MaxVarintLen64 + 1 + (n+3)/4
}

// packEsc folds escape detection into the payload lookup: bits 0-1 carry
// the 2-bit code (0 for escaped bytes, per the layout), bit 8 flags an
// escape. Shifting four entries into a uint16 keeps the flags in the high
// byte, so the pack loop emits the packed byte and detects escapes with
// one table lookup per base and no branches. unpack4 is the inverse: one
// packed byte to its four bases as a little-endian uint32, stored with a
// single 4-byte write.
var (
	packEsc [256]uint16
	unpack4 [256]uint32
)

func init() {
	for i := range packEsc {
		if c := baseCode[i]; c != 0xFF {
			packEsc[i] = uint16(c)
		} else {
			packEsc[i] = 0x100
		}
	}
	for i := range unpack4 {
		var v uint32
		for j := 0; j < 4; j++ {
			v |= uint32(codeBase[(i>>(2*j))&3]) << (8 * j)
		}
		unpack4[i] = v
	}
}

// Pack appends the packed encoding of seq to dst and returns the extended
// slice. It never retains seq or dst.
func Pack(dst, seq []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(seq)))
	// Optimistic single pass: write escape count 0 and pack the payload
	// while accumulating the escape flags; the high byte of the packEsc
	// entries stays zero for all-ACGT input, which read and contig
	// payloads are. Escapes send the whole sequence down the slow path.
	mark := len(dst)
	dst = append(dst, 0)
	packed := (len(seq) + 3) / 4
	base := len(dst)
	if cap(dst)-base < packed {
		grown := make([]byte, base, base+packed)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+packed]
	out := dst[base:]
	var esc uint16
	full := len(seq) &^ 3
	for i := 0; i < full; i += 4 {
		v := packEsc[seq[i]] |
			packEsc[seq[i+1]]<<2 |
			packEsc[seq[i+2]]<<4 |
			packEsc[seq[i+3]]<<6
		esc |= v
		out[i>>2] = byte(v)
	}
	if full < len(seq) {
		var v uint16
		for i, b := range seq[full:] {
			v |= packEsc[b] << uint(2*i)
		}
		esc |= v
		out[full>>2] = byte(v)
	}
	if esc < 0x100 {
		return dst
	}
	return packSlow(dst[:mark], seq)
}

// packSlow re-encodes a sequence that contains escaped bytes: the escape
// section (count, gap-coded positions, raw bytes) precedes the payload,
// so the optimistic layout Pack wrote cannot be patched in place. dst
// arrives truncated to just after the length varint.
func packSlow(dst, seq []byte) []byte {
	nEsc := 0
	for _, b := range seq {
		if baseCode[b] == 0xFF {
			nEsc++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(nEsc))
	prev := 0
	for i, b := range seq {
		if baseCode[b] == 0xFF {
			dst = binary.AppendUvarint(dst, uint64(i-prev))
			dst = append(dst, b)
			prev = i
		}
	}
	var acc byte
	shift := uint(0)
	for _, b := range seq {
		acc |= byte(packEsc[b]) << shift
		shift += 2
		if shift == 8 {
			dst = append(dst, acc)
			acc, shift = 0, 0
		}
	}
	if shift > 0 {
		dst = append(dst, acc)
	}
	return dst
}

// Unpack decodes one packed sequence from src, appending its bases to dst
// (pass nil to allocate fresh). It returns the extended destination and
// the remainder of src after the sequence. The returned bases never alias
// src.
func Unpack(dst, src []byte) (seq, rest []byte, err error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return dst, src, fmt.Errorf("dna: packed sequence: bad length")
	}
	src = src[k:]
	nEsc, k := binary.Uvarint(src)
	if k <= 0 {
		return dst, src, fmt.Errorf("dna: packed sequence: bad escape count")
	}
	src = src[k:]
	type esc struct {
		pos int
		b   byte
	}
	// Escapes are rare; a small stack buffer avoids allocation for the
	// common counts.
	var escBuf [16]esc
	escs := escBuf[:0]
	prev := 0
	for i := uint64(0); i < nEsc; i++ {
		gap, k := binary.Uvarint(src)
		if k <= 0 || k >= len(src) {
			return dst, src, fmt.Errorf("dna: packed sequence: bad escape %d", i)
		}
		b := src[k]
		src = src[k+1:]
		pos := prev + int(gap)
		if uint64(pos) >= n {
			return dst, src, fmt.Errorf("dna: packed sequence: escape position %d outside %d bases", pos, n)
		}
		escs = append(escs, esc{pos, b})
		prev = pos
	}
	packed := (int(n) + 3) / 4
	if packed > len(src) {
		return dst, src, fmt.Errorf("dna: packed sequence: %d payload bytes, need %d", len(src), packed)
	}
	base := len(dst)
	if cap(dst)-base < int(n) {
		grown := make([]byte, base, base+int(n))
		copy(grown, dst)
		dst = grown
	}
	out := dst[base : base+int(n)]
	dst = dst[:base+int(n)]
	full := int(n) &^ 3
	for i := 0; i < full; i += 4 {
		binary.LittleEndian.PutUint32(out[i:], unpack4[src[i>>2]])
	}
	for i := full; i < int(n); i++ {
		out[i] = codeBase[(src[i>>2]>>uint((i&3)*2))&3]
	}
	for _, e := range escs {
		out[e.pos] = e.b
	}
	return dst, src[packed:], nil
}
