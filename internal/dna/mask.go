package dna

// RepeatMasked is the single definition of the overlap stage's
// occurrence-cap (repeat-masking) policy: a k-mer occurring occ times in
// one reference subset is masked when a positive cap is exceeded
// *strictly* — exactly-at-threshold k-mers are kept. cap <= 0 disables
// masking. Every seed structure (the k-mer table, the suffix array, and
// the spmat column pruning) must call this helper rather than re-deriving
// the comparison, so the boundary semantics cannot drift between engines.
func RepeatMasked(occ, cap int) bool {
	return cap > 0 && occ > cap
}
