package dna

import "fmt"

// Kmer is a 2-bit packed k-mer, k ≤ 32. The most significant bits hold the
// leftmost base. A Kmer value alone does not know its own k; callers carry
// k alongside, as the overlap indexer does.
type Kmer uint64

// MaxK is the largest k representable by a packed Kmer.
const MaxK = 32

// PackKmer packs seq[0:k] into a Kmer. It returns ok=false if the window
// contains an N (k-mers spanning Ns are skipped by convention, matching the
// behaviour of the Focus alignment indexer).
func PackKmer(seq []byte, k int) (km Kmer, ok bool) {
	if k <= 0 || k > MaxK || len(seq) < k {
		return 0, false
	}
	var v uint64
	for i := 0; i < k; i++ {
		c := baseCode[seq[i]]
		if c == 0xFF {
			return 0, false
		}
		v = v<<2 | uint64(c)
	}
	return Kmer(v), true
}

// String renders the k-mer as bases for the given k.
func (km Kmer) String(k int) string {
	return string(km.AppendBytes(make([]byte, 0, k), k))
}

// AppendBytes appends the k bases of the k-mer to dst and returns the
// extended slice, allowing callers to unpack k-mers into a reused buffer
// without allocating.
func (km Kmer) AppendBytes(dst []byte, k int) []byte {
	n := len(dst)
	for i := 0; i < k; i++ {
		dst = append(dst, 0)
	}
	v := uint64(km)
	for i := k - 1; i >= 0; i-- {
		dst[n+i] = codeBase[v&3]
		v >>= 2
	}
	return dst
}

// ReverseComplement returns the reverse complement of the k-mer for the
// given k.
func (km Kmer) ReverseComplement(k int) Kmer {
	v := uint64(km)
	var r uint64
	for i := 0; i < k; i++ {
		r = r<<2 | (^v)&3
		v >>= 2
	}
	return Kmer(r)
}

// Canonical returns the lexicographically smaller of the k-mer and its
// reverse complement.
func (km Kmer) Canonical(k int) Kmer {
	rc := km.ReverseComplement(k)
	if rc < km {
		return rc
	}
	return km
}

// KmerIter iterates over every k-mer of a sequence with a rolling 2-bit
// encoding, skipping windows that contain N.
type KmerIter struct {
	seq   []byte
	k     int
	mask  uint64
	pos   int    // index of the NEXT base to consume
	valid int    // number of consecutive valid bases ending at pos-1
	cur   uint64 // rolling value of the last min(valid,k) bases
}

// NewKmerIter returns an iterator over the k-mers of seq. It panics if
// k is out of range (programmer error; k is a configuration constant).
func NewKmerIter(seq []byte, k int) *KmerIter {
	if k <= 0 || k > MaxK {
		panic(fmt.Sprintf("dna: k=%d out of range [1,%d]", k, MaxK))
	}
	var mask uint64
	if k == 32 {
		mask = ^uint64(0)
	} else {
		mask = (1 << (2 * uint(k))) - 1
	}
	return &KmerIter{seq: seq, k: k, mask: mask}
}

// Next returns the next k-mer and the offset of its first base, or
// ok=false when the sequence is exhausted.
func (it *KmerIter) Next() (km Kmer, offset int, ok bool) {
	for it.pos < len(it.seq) {
		c := baseCode[it.seq[it.pos]]
		it.pos++
		if c == 0xFF {
			it.valid = 0
			it.cur = 0
			continue
		}
		it.cur = (it.cur<<2 | uint64(c)) & it.mask
		it.valid++
		if it.valid >= it.k {
			return Kmer(it.cur), it.pos - it.k, true
		}
	}
	return 0, 0, false
}

// ForEachKmer calls fn for every N-free k-mer window of seq in left-to-right
// order, passing the packed k-mer and the offset of its first base. Windows
// containing any non-ACGT byte (N, separators such as '#') are skipped, so
// enumerating a concatenation of '#'-separated reads never yields a k-mer
// spanning two reads. It performs no allocations.
func ForEachKmer(seq []byte, k int, fn func(km Kmer, offset int)) {
	if k <= 0 || k > MaxK {
		panic(fmt.Sprintf("dna: k=%d out of range [1,%d]", k, MaxK))
	}
	var mask uint64
	if k == 32 {
		mask = ^uint64(0)
	} else {
		mask = (1 << (2 * uint(k))) - 1
	}
	var cur uint64
	valid := 0
	for i := 0; i < len(seq); i++ {
		c := baseCode[seq[i]]
		if c == 0xFF {
			valid, cur = 0, 0
			continue
		}
		cur = (cur<<2 | uint64(c)) & mask
		valid++
		if valid >= k {
			fn(Kmer(cur), i+1-k)
		}
	}
}

// CountKmers returns the number of k-mers (N-free windows) in seq.
func CountKmers(seq []byte, k int) int {
	it := NewKmerIter(seq, k)
	n := 0
	for {
		if _, _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}
