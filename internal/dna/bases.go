// Package dna provides the sequence primitives used throughout Focus:
// nucleotide alphabets, reverse complements, k-mer extraction with 2-bit
// packing, and FASTA/FASTQ input and output.
//
// Sequences are represented as []byte over the alphabet {A, C, G, T, N}
// (upper case). Lower-case input is accepted by the parsers and folded to
// upper case; any other byte is an error.
package dna

import "fmt"

// Complement maps each IUPAC base this package supports to its complement.
// N maps to N.
var complement = [256]byte{}

func init() {
	for i := range complement {
		complement[i] = 0
	}
	complement['A'] = 'T'
	complement['C'] = 'G'
	complement['G'] = 'C'
	complement['T'] = 'A'
	complement['N'] = 'N'
}

// ValidBase reports whether b is one of A, C, G, T or N.
func ValidBase(b byte) bool { return complement[b] != 0 }

// ValidateSeq returns an error describing the first invalid byte in seq,
// or nil if every byte is a valid base.
func ValidateSeq(seq []byte) error {
	for i, b := range seq {
		if !ValidBase(b) {
			return fmt.Errorf("dna: invalid base %q at position %d", b, i)
		}
	}
	return nil
}

// Complement returns the complement of a single base. It panics on bytes
// that are not valid bases; callers validate input at parse time.
func Complement(b byte) byte {
	c := complement[b]
	if c == 0 {
		panic(fmt.Sprintf("dna: complement of invalid base %q", b))
	}
	return c
}

// ReverseComplement returns a newly allocated reverse complement of seq.
func ReverseComplement(seq []byte) []byte {
	rc := make([]byte, len(seq))
	for i, b := range seq {
		rc[len(seq)-1-i] = Complement(b)
	}
	return rc
}

// ReverseComplementInPlace reverse-complements seq without allocating.
func ReverseComplementInPlace(seq []byte) {
	i, j := 0, len(seq)-1
	for i < j {
		seq[i], seq[j] = Complement(seq[j]), Complement(seq[i])
		i++
		j--
	}
	if i == j {
		seq[i] = Complement(seq[i])
	}
}

// baseCode maps A,C,G,T to 0..3. N and invalid bases map to 0xFF.
var baseCode = [256]byte{}

func init() {
	for i := range baseCode {
		baseCode[i] = 0xFF
	}
	baseCode['A'] = 0
	baseCode['C'] = 1
	baseCode['G'] = 2
	baseCode['T'] = 3
}

// codeBase is the inverse of baseCode for the four concrete bases.
var codeBase = [4]byte{'A', 'C', 'G', 'T'}

// BaseCode returns the 2-bit code of b (A=0 C=1 G=2 T=3) and ok=false for
// N or invalid bytes.
func BaseCode(b byte) (code byte, ok bool) {
	c := baseCode[b]
	return c, c != 0xFF
}

// CodeBase returns the base letter for a 2-bit code.
func CodeBase(c byte) byte { return codeBase[c&3] }

// GC returns the fraction of G and C bases in seq, ignoring Ns. It returns
// 0 for an empty or all-N sequence.
func GC(seq []byte) float64 {
	gc, acgt := 0, 0
	for _, b := range seq {
		switch b {
		case 'G', 'C':
			gc++
			acgt++
		case 'A', 'T':
			acgt++
		}
	}
	if acgt == 0 {
		return 0
	}
	return float64(gc) / float64(acgt)
}
