package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"focus/internal/dna"
)

// ReadConfig controls the Illumina-like read sampler.
type ReadConfig struct {
	ReadLen  int
	Coverage float64 // mean fold coverage across the community
	// ErrorRate5 and ErrorRate3 are the substitution probabilities at the
	// 5' and 3' ends; the rate ramps linearly along the read, matching the
	// 3'-degrading quality profile that the paper's sliding-window trimmer
	// (§II.A) is designed for.
	ErrorRate5 float64
	ErrorRate3 float64
	// IndelRate is the per-base probability of a 1 bp insertion or
	// deletion (Illumina-realistically much rarer than substitutions; the
	// banded alignment absorbs the resulting diagonal shifts). Reads keep
	// their configured length by consuming extra template.
	IndelRate float64
	Seed      int64
	// AdapterLen, when > 0, prefixes every read with that many adapter
	// bases (a fixed synthetic adapter), exercising the fixed-length
	// 5' trimming step.
	AdapterLen int
	// Paired, when true, samples read pairs from fragments of length
	// N(InsertMean, InsertSD): read 2i is the fragment's 5' end on the
	// forward strand and read 2i+1 the 3' end reverse-complemented
	// (standard Illumina FR orientation). Mates are adjacent in the
	// output (ids suffixed /1 and /2).
	Paired     bool
	InsertMean int
	InsertSD   int
}

// Origin is the ground-truth provenance of a simulated read.
type Origin struct {
	GenomeID string
	Pos      int
	Reverse  bool
}

// ReadSet is a simulated read data set with ground truth.
type ReadSet struct {
	Name    string
	Reads   []dna.Read
	Origins []Origin // parallel to Reads
	// Paired marks mate-pair layout: reads 2i and 2i+1 are mates.
	Paired bool
}

// Mate returns the index of read i's mate, or -1 for unpaired sets.
func (rs *ReadSet) Mate(i int) int {
	if !rs.Paired {
		return -1
	}
	return i ^ 1
}

// adapter returns the fixed synthetic adapter sequence of length n.
func adapter(n int) []byte {
	const motif = "AGATCGGAAGAGC" // Illumina TruSeq adapter prefix
	out := make([]byte, n)
	for i := range out {
		out[i] = motif[i%len(motif)]
	}
	return out
}

// errorRateAt interpolates the substitution rate at base i of a read.
func (c ReadConfig) errorRateAt(i int) float64 {
	if c.ReadLen <= 1 {
		return c.ErrorRate5
	}
	f := float64(i) / float64(c.ReadLen-1)
	return c.ErrorRate5 + f*(c.ErrorRate3-c.ErrorRate5)
}

// phredFor converts an error probability to a Phred+33 quality byte, with
// light noise so quality strings are not perfectly smooth.
func phredFor(rng *rand.Rand, p float64) byte {
	if p < 1e-5 {
		p = 1e-5
	}
	q := -10 * math.Log10(p)
	q += rng.NormFloat64() * 2
	if q < 2 {
		q = 2
	}
	if q > 41 {
		q = 41
	}
	return byte(33 + int(q+0.5))
}

// SimulateReads samples reads from the community at the configured
// coverage. Reads are drawn from genomes proportionally to abundance and
// from a uniformly random strand. Read IDs encode ground truth as
// "r<idx>|<genomeID>|<pos>|<+/->" so downstream evaluation (Fig. 7) can
// recover provenance without a side table.
func SimulateReads(com *Community, cfg ReadConfig) (*ReadSet, error) {
	if cfg.ReadLen <= 0 {
		return nil, fmt.Errorf("simulate: read length %d", cfg.ReadLen)
	}
	if cfg.Coverage <= 0 {
		return nil, fmt.Errorf("simulate: coverage %v", cfg.Coverage)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalAb := 0.0
	for _, g := range com.Spec.Genera {
		totalAb += g.Abundance
	}
	if totalAb <= 0 {
		return nil, fmt.Errorf("simulate: community %q has zero total abundance", com.Spec.Name)
	}

	totalReads := int(float64(com.TotalBases()) * cfg.Coverage / float64(cfg.ReadLen))
	rs := &ReadSet{Name: com.Spec.Name, Paired: cfg.Paired}
	ad := adapter(cfg.AdapterLen)

	// emit appends one read sampled at pos (rev selects the strand),
	// applying the error ramp, indels, quality model and adapter prefix.
	emit := func(genome *Genome, pos int, rev bool, suffix string) {
		// Take extra template so 1bp deletions cannot run off the end.
		span := cfg.ReadLen + 8
		if pos+span > len(genome.Seq) {
			span = len(genome.Seq) - pos
		}
		template := genome.Seq[pos : pos+span]
		var frag []byte
		if cfg.IndelRate > 0 {
			frag = make([]byte, 0, cfg.ReadLen)
			for ti := 0; len(frag) < cfg.ReadLen && ti < len(template); ti++ {
				if rng.Float64() < cfg.IndelRate {
					if rng.Intn(2) == 0 {
						continue // deletion: skip a template base
					}
					frag = append(frag, bases[rng.Intn(4)]) // insertion
					if len(frag) == cfg.ReadLen {
						break
					}
				}
				frag = append(frag, template[ti])
			}
			for len(frag) < cfg.ReadLen { // template exhausted: pad
				frag = append(frag, bases[rng.Intn(4)])
			}
		} else {
			frag = append([]byte(nil), template[:cfg.ReadLen]...)
		}
		if rev {
			dna.ReverseComplementInPlace(frag)
		}
		qual := make([]byte, 0, cfg.ReadLen+cfg.AdapterLen)
		seq := make([]byte, 0, cfg.ReadLen+cfg.AdapterLen)
		seq = append(seq, ad...)
		for range ad {
			qual = append(qual, phredFor(rng, 0.001))
		}
		for j, b := range frag {
			p := cfg.errorRateAt(j)
			if rng.Float64() < p {
				nb := bases[rng.Intn(4)]
				for nb == b {
					nb = bases[rng.Intn(4)]
				}
				b = nb
			}
			seq = append(seq, b)
			qual = append(qual, phredFor(rng, p))
		}
		strand := "+"
		if rev {
			strand = "-"
		}
		id := fmt.Sprintf("r%06d%s|%s|%d|%s", len(rs.Reads), suffix, genome.ID, pos, strand)
		rs.Reads = append(rs.Reads, dna.Read{ID: id, Seq: seq, Qual: qual})
		rs.Origins = append(rs.Origins, Origin{GenomeID: genome.ID, Pos: pos, Reverse: rev})
	}

	insertFor := func(genomeLen int) (int, bool) {
		ins := cfg.InsertMean + int(rng.NormFloat64()*float64(cfg.InsertSD))
		if ins < 2*cfg.ReadLen {
			ins = 2 * cfg.ReadLen
		}
		return ins, ins <= genomeLen
	}
	if cfg.Paired && cfg.InsertMean < 2*cfg.ReadLen {
		return nil, fmt.Errorf("simulate: insert mean %d below two read lengths", cfg.InsertMean)
	}

	for i := range com.Genomes {
		genome := &com.Genomes[i]
		share := com.Spec.Genera[i].Abundance / totalAb
		n := int(float64(totalReads) * share)
		if len(genome.Seq) < cfg.ReadLen {
			return nil, fmt.Errorf("simulate: genome %s shorter than read length", genome.ID)
		}
		if cfg.Paired {
			for r := 0; r < n/2; r++ {
				ins, ok := insertFor(len(genome.Seq))
				if !ok {
					return nil, fmt.Errorf("simulate: genome %s shorter than insert size", genome.ID)
				}
				start := rng.Intn(len(genome.Seq) - ins + 1)
				// FR orientation: /1 forward at the fragment's 5' end,
				// /2 reverse-complemented at its 3' end.
				emit(genome, start, false, "/1")
				emit(genome, start+ins-cfg.ReadLen, true, "/2")
			}
		} else {
			for r := 0; r < n; r++ {
				pos := rng.Intn(len(genome.Seq) - cfg.ReadLen + 1)
				emit(genome, pos, rng.Intn(2) == 1, "")
			}
		}
	}
	return rs, nil
}

// ParseOrigin recovers the ground-truth origin encoded in a simulated read
// ID. The boolean is false for ids that do not carry provenance (e.g. reads
// parsed from external files).
func ParseOrigin(readID string) (Origin, bool) {
	parts := strings.Split(readID, "|")
	if len(parts) != 4 {
		return Origin{}, false
	}
	pos, err := strconv.Atoi(parts[2])
	if err != nil {
		return Origin{}, false
	}
	return Origin{GenomeID: parts[1], Pos: pos, Reverse: parts[3] == "-"}, true
}

// TotalBases returns the summed read length of the set.
func (rs *ReadSet) TotalBases() int {
	n := 0
	for _, r := range rs.Reads {
		n += len(r.Seq)
	}
	return n
}
