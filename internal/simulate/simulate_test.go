package simulate

import (
	"math"
	"testing"

	"focus/internal/dna"
)

func testSpec() CommunitySpec {
	return CommunitySpec{
		Name: "test",
		Seed: 42,
		Genera: []GenusSpec{
			{Genus: "A", Phylum: "P1", GenomeLen: 2000, Abundance: 1, Divergence: 0.05},
			{Genus: "B", Phylum: "P1", GenomeLen: 1500, Abundance: 2, Divergence: 0.05},
			{Genus: "C", Phylum: "P2", GenomeLen: 2000, Abundance: 1, Divergence: 0.05},
		},
	}
}

func TestBuildCommunityDeterministic(t *testing.T) {
	c1, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Genomes {
		if string(c1.Genomes[i].Seq) != string(c2.Genomes[i].Seq) {
			t.Fatalf("genome %d differs across runs with same seed", i)
		}
	}
}

func TestBuildCommunityLengthsAndValidity(t *testing.T) {
	c, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Genomes) != 3 {
		t.Fatalf("got %d genomes", len(c.Genomes))
	}
	wantLens := []int{2000, 1500, 2000}
	for i, g := range c.Genomes {
		if len(g.Seq) != wantLens[i] {
			t.Errorf("genome %d len = %d, want %d", i, len(g.Seq), wantLens[i])
		}
		if err := dna.ValidateSeq(g.Seq); err != nil {
			t.Errorf("genome %d: %v", i, err)
		}
	}
	if c.TotalBases() != 5500 {
		t.Errorf("TotalBases = %d, want 5500", c.TotalBases())
	}
}

// Same-phylum genomes must be similar (shared ancestor), cross-phylum
// genomes must not be.
func TestPhylumRelatedness(t *testing.T) {
	c, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ident := func(a, b []byte) float64 {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		same := 0
		for i := 0; i < n; i++ {
			if a[i] == b[i] {
				same++
			}
		}
		return float64(same) / float64(n)
	}
	ab := ident(c.Genomes[0].Seq, c.Genomes[1].Seq)
	ac := ident(c.Genomes[0].Seq, c.Genomes[2].Seq)
	if ab < 0.85 {
		t.Errorf("same-phylum identity = %v, want >= 0.85", ab)
	}
	if ac > 0.40 {
		t.Errorf("cross-phylum identity = %v, want ~0.25 (random)", ac)
	}
}

func TestBuildCommunityErrors(t *testing.T) {
	if _, err := BuildCommunity(CommunitySpec{Name: "x"}); err == nil {
		t.Error("empty community accepted")
	}
	bad := testSpec()
	bad.Genera[0].GenomeLen = 0
	if _, err := BuildCommunity(bad); err == nil {
		t.Error("zero-length genome accepted")
	}
}

func TestRepeatsInserted(t *testing.T) {
	spec := testSpec()
	spec.RepeatLen = 100
	spec.RepeatCopies = 3
	c, err := BuildCommunity(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Each genome keeps its configured length despite repeat insertion.
	if len(c.Genomes[0].Seq) != 2000 {
		t.Errorf("len = %d after repeat insertion", len(c.Genomes[0].Seq))
	}
}

func TestSimulateReadsBasics(t *testing.T) {
	c, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ReadConfig{ReadLen: 100, Coverage: 5, ErrorRate5: 0.001, ErrorRate3: 0.02, Seed: 9, AdapterLen: 5}
	rs, err := SimulateReads(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Reads) == 0 {
		t.Fatal("no reads produced")
	}
	if len(rs.Reads) != len(rs.Origins) {
		t.Fatal("origins not parallel to reads")
	}
	// ~coverage * totalBases / readLen reads expected (within rounding).
	want := float64(c.TotalBases()) * cfg.Coverage / float64(cfg.ReadLen)
	if math.Abs(float64(len(rs.Reads))-want) > want*0.1 {
		t.Errorf("read count %d, want about %v", len(rs.Reads), want)
	}
	for i, r := range rs.Reads {
		if len(r.Seq) != cfg.ReadLen+cfg.AdapterLen {
			t.Fatalf("read %d len = %d", i, len(r.Seq))
		}
		if len(r.Qual) != len(r.Seq) {
			t.Fatalf("read %d qual len mismatch", i)
		}
		if err := dna.ValidateSeq(r.Seq); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func TestSimulateReadsAbundanceProportions(t *testing.T) {
	c, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateReads(c, ReadConfig{ReadLen: 50, Coverage: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, o := range rs.Origins {
		counts[o.GenomeID]++
	}
	// Genus B has 2x the abundance of A and C.
	a := counts[c.Genomes[0].ID]
	b := counts[c.Genomes[1].ID]
	if b < a {
		t.Errorf("abundance not respected: a=%d b=%d", a, b)
	}
}

func TestOriginRoundTrip(t *testing.T) {
	c, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateReads(c, ReadConfig{ReadLen: 60, Coverage: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs.Reads {
		o, ok := ParseOrigin(r.ID)
		if !ok {
			t.Fatalf("ParseOrigin(%q) failed", r.ID)
		}
		if o != rs.Origins[i] {
			t.Fatalf("origin mismatch for %q: %+v vs %+v", r.ID, o, rs.Origins[i])
		}
	}
	if _, ok := ParseOrigin("plain-id"); ok {
		t.Error("ParseOrigin accepted plain id")
	}
	if _, ok := ParseOrigin("a|b|notanint|+"); ok {
		t.Error("ParseOrigin accepted bad position")
	}
}

// Reads without errors must match their source genome exactly; with the
// error ramp, 3' ends must degrade.
func TestReadFidelity(t *testing.T) {
	c, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateReads(c, ReadConfig{ReadLen: 80, Coverage: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string][]byte{}
	for _, g := range c.Genomes {
		byID[g.ID] = g.Seq
	}
	for i, r := range rs.Reads {
		o := rs.Origins[i]
		frag := append([]byte(nil), byID[o.GenomeID][o.Pos:o.Pos+80]...)
		if o.Reverse {
			dna.ReverseComplementInPlace(frag)
		}
		if string(frag) != string(r.Seq) {
			t.Fatalf("error-free read %d does not match genome", i)
		}
	}
}

func TestErrorRampDegradesQuality(t *testing.T) {
	c, err := BuildCommunity(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateReads(c, ReadConfig{ReadLen: 100, Coverage: 5, ErrorRate5: 0.001, ErrorRate3: 0.05, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	head, tail := 0.0, 0.0
	for _, r := range rs.Reads {
		for i := 0; i < 10; i++ {
			head += float64(r.PhredQuality(i))
			tail += float64(r.PhredQuality(len(r.Seq) - 1 - i))
		}
	}
	if tail >= head {
		t.Errorf("3' quality (%v) not lower than 5' quality (%v)", tail, head)
	}
}

func TestPaperDataSets(t *testing.T) {
	for id := 1; id <= 3; id++ {
		spec, err := PaperDataSet(id, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		c, err := BuildCommunity(spec)
		if err != nil {
			t.Fatal(err)
		}
		if c.TotalBases() == 0 {
			t.Fatalf("D%d empty", id)
		}
		cfg := PaperReadConfig(id, 4)
		if cfg.ReadLen != 100 {
			t.Errorf("D%d read length %d, want 100 (Table I)", id, cfg.ReadLen)
		}
		rs, err := SimulateReads(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Reads) == 0 {
			t.Fatalf("D%d produced no reads", id)
		}
	}
	if _, err := PaperDataSet(4, 1); err == nil {
		t.Error("data set 4 accepted")
	}
	if _, err := PaperDataSet(1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestSimulateReadsErrors(t *testing.T) {
	c, _ := BuildCommunity(testSpec())
	if _, err := SimulateReads(c, ReadConfig{ReadLen: 0, Coverage: 1}); err == nil {
		t.Error("zero read length accepted")
	}
	if _, err := SimulateReads(c, ReadConfig{ReadLen: 100, Coverage: 0}); err == nil {
		t.Error("zero coverage accepted")
	}
	if _, err := SimulateReads(c, ReadConfig{ReadLen: 10000, Coverage: 1}); err == nil {
		t.Error("read longer than genome accepted")
	}
	zero := testSpec()
	for i := range zero.Genera {
		zero.Genera[i].Abundance = 0
	}
	cz, _ := BuildCommunity(zero)
	if _, err := SimulateReads(cz, ReadConfig{ReadLen: 10, Coverage: 1}); err == nil {
		t.Error("zero total abundance accepted")
	}
}

func TestSimulatePairedReads(t *testing.T) {
	c, err := BuildCommunity(SingleGenome("p", 5000, 60))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ReadConfig{ReadLen: 100, Coverage: 6, Seed: 61, Paired: true, InsertMean: 400, InsertSD: 30}
	rs, err := SimulateReads(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Paired || len(rs.Reads)%2 != 0 {
		t.Fatalf("paired=%v reads=%d", rs.Paired, len(rs.Reads))
	}
	if rs.Mate(0) != 1 || rs.Mate(1) != 0 || rs.Mate(5) != 4 {
		t.Errorf("mate indices wrong")
	}
	genome := c.Genomes[0].Seq
	for i := 0; i < len(rs.Reads); i += 2 {
		o1, o2 := rs.Origins[i], rs.Origins[i+1]
		if o1.Reverse || !o2.Reverse {
			t.Fatalf("pair %d orientations: %v %v", i/2, o1.Reverse, o2.Reverse)
		}
		ins := (o2.Pos + cfg.ReadLen) - o1.Pos
		if ins < 2*cfg.ReadLen || ins > cfg.InsertMean+5*cfg.InsertSD {
			t.Fatalf("pair %d insert %d out of range", i/2, ins)
		}
		// Error-free config: mates must match the genome.
		if string(rs.Reads[i].Seq) != string(genome[o1.Pos:o1.Pos+100]) {
			t.Fatalf("pair %d /1 mismatch", i/2)
		}
	}
	// Unpaired Mate() returns -1.
	rs2, err := SimulateReads(c, ReadConfig{ReadLen: 100, Coverage: 2, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Mate(0) != -1 {
		t.Error("unpaired Mate != -1")
	}
}

func TestSimulateIndelReads(t *testing.T) {
	c, err := BuildCommunity(SingleGenome("i", 5000, 70))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateReads(c, ReadConfig{ReadLen: 100, Coverage: 6, Seed: 71, IndelRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	genome := c.Genomes[0].Seq
	shifted := 0
	for i, r := range rs.Reads {
		if len(r.Seq) != 100 {
			t.Fatalf("read %d length %d", i, len(r.Seq))
		}
		o := rs.Origins[i]
		seq := r.Seq
		if o.Reverse {
			seq = dna.ReverseComplement(seq)
		}
		if string(seq) != string(genome[o.Pos:o.Pos+100]) {
			shifted++
		}
	}
	// At 1% indel rate most 100bp reads carry at least one indel.
	if shifted < len(rs.Reads)/2 {
		t.Errorf("only %d/%d reads affected by indels", shifted, len(rs.Reads))
	}
	// Reads still start at their origin (the first bases survive until
	// the first indel): the 10bp prefix usually matches.
	match := 0
	for i, r := range rs.Reads {
		o := rs.Origins[i]
		seq := r.Seq
		if o.Reverse {
			seq = dna.ReverseComplement(seq)
		}
		if string(seq[:10]) == string(genome[o.Pos:o.Pos+10]) {
			match++
		}
	}
	if match < len(rs.Reads)*7/10 {
		t.Errorf("only %d/%d reads anchored at origin", match, len(rs.Reads))
	}
}

func TestSimulatePairedErrors(t *testing.T) {
	c, _ := BuildCommunity(SingleGenome("p", 1000, 63))
	if _, err := SimulateReads(c, ReadConfig{ReadLen: 100, Coverage: 2, Paired: true, InsertMean: 150}); err == nil {
		t.Error("insert below 2 read lengths accepted")
	}
	if _, err := SimulateReads(c, ReadConfig{ReadLen: 100, Coverage: 2, Paired: true, InsertMean: 2000, InsertSD: 1}); err == nil {
		t.Error("insert beyond genome accepted")
	}
}

func TestSingleGenome(t *testing.T) {
	c, err := BuildCommunity(SingleGenome("g", 5000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Genomes) != 1 || len(c.Genomes[0].Seq) != 5000 {
		t.Fatalf("unexpected community %+v", c.Spec)
	}
	if c.GenusOf(c.Genomes[0].ID) != "Testus" {
		t.Errorf("GenusOf = %q", c.GenusOf(c.Genomes[0].ID))
	}
	if c.GenusOf("nope") != "" {
		t.Error("GenusOf(unknown) nonempty")
	}
}

func TestGutGenera(t *testing.T) {
	genera, phyla := GutGenera()
	if len(genera) != 10 || len(phyla) != 10 {
		t.Fatalf("got %d genera, %d phyla", len(genera), len(phyla))
	}
	counts := map[string]int{}
	for _, p := range phyla {
		counts[p]++
	}
	if counts["Bacteroidetes"] != 4 || counts["Firmicutes"] != 4 || counts["Proteobacteria"] != 2 {
		t.Errorf("phylum distribution %v", counts)
	}
}
