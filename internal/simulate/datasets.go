package simulate

import "fmt"

// The ten major genera the paper observes in its gut-microbiome data sets
// (§VI.E), with their phylum assignments. Genera sharing a phylum derive
// from a shared simulated ancestor, so their reads overlap and their graph
// nodes co-cluster — the effect Fig. 7 demonstrates.
var gutGenera = []struct {
	genus, phylum string
}{
	{"Alistipes", "Bacteroidetes"},
	{"Bacteroides", "Bacteroidetes"},
	{"Prevotella", "Bacteroidetes"},
	{"Parabacteroides", "Bacteroidetes"},
	{"Clostridium", "Firmicutes"},
	{"Eubacterium", "Firmicutes"},
	{"Faecalibacterium", "Firmicutes"},
	{"Roseburia", "Firmicutes"},
	{"Escherichia", "Proteobacteria"},
	{"Acinetobacter", "Proteobacteria"},
}

// GutGenera returns the simulated genus/phylum table in order.
func GutGenera() (genera, phyla []string) {
	for _, g := range gutGenera {
		genera = append(genera, g.genus)
		phyla = append(phyla, g.phylum)
	}
	return genera, phyla
}

// PaperDataSet returns the spec for one of the three synthetic analogues of
// the paper's data sets (id 1..3, Table I). scale linearly multiplies all
// genome lengths; scale=1 gives a per-genome length around 12 kb — small
// enough for CI, large enough that all graph stages are exercised. The
// three sets differ in diversity and repeat content so that, as in the
// paper, set 1 is the least complex and set 2 the most complex.
func PaperDataSet(id int, scale float64) (CommunitySpec, error) {
	if scale <= 0 {
		return CommunitySpec{}, fmt.Errorf("simulate: scale %v", scale)
	}
	L := func(n int) int { return int(float64(n) * scale) }
	spec := CommunitySpec{Name: fmt.Sprintf("D%d", id)}
	// Backbones of related genera are >10% diverged (no cross-alignment
	// at the assembler's 90% identity threshold); conserved loci stay at
	// ~2% divergence and provide the cross-genus connectivity that Fig. 7
	// observes between related genera.
	switch id {
	case 1:
		// Least complex: fewer genera, skewed abundances, no repeats.
		spec.Seed = 101
		spec.ConservedFrac = 0.10
		spec.ConservedLen = L(600)
		spec.ConservedDiv = 0.02
		for i, g := range gutGenera[:6] {
			spec.Genera = append(spec.Genera, GenusSpec{
				Genus: g.genus, Phylum: g.phylum,
				GenomeLen:  L(12000),
				Abundance:  1.0 / float64(i+1),
				Divergence: 0.13,
			})
		}
	case 2:
		// Most complex: all ten genera, longest genomes, repeats, more
		// conserved sequence (denser cross-genus connectivity -> higher
		// edge cut).
		spec.Seed = 202
		spec.RepeatLen = L(400)
		spec.RepeatCopies = 4
		// Conserved loci (rRNA operons, housekeeping genes) occupy up to
		// ~10% of real bacterial genomes; D2 sits at that upper end.
		spec.ConservedFrac = 0.10
		spec.ConservedLen = L(700)
		spec.ConservedDiv = 0.02
		for _, g := range gutGenera {
			spec.Genera = append(spec.Genera, GenusSpec{
				Genus: g.genus, Phylum: g.phylum,
				GenomeLen:  L(15000),
				Abundance:  1.0,
				Divergence: 0.11,
			})
		}
	case 3:
		// Intermediate: all ten genera, moderate lengths, light repeats.
		spec.Seed = 303
		spec.RepeatLen = L(300)
		spec.RepeatCopies = 2
		spec.ConservedFrac = 0.12
		spec.ConservedLen = L(600)
		spec.ConservedDiv = 0.02
		for i, g := range gutGenera {
			spec.Genera = append(spec.Genera, GenusSpec{
				Genus: g.genus, Phylum: g.phylum,
				GenomeLen:  L(12000),
				Abundance:  1.0 / float64(1+i%3),
				Divergence: 0.12,
			})
		}
	default:
		return CommunitySpec{}, fmt.Errorf("simulate: unknown paper data set %d", id)
	}
	return spec, nil
}

// PaperReadConfig returns the read sampler configuration used for the
// paper-analogue data sets: 100 bp reads (matching Table I), 3'-degrading
// error profile, and a short adapter so preprocessing has work to do.
func PaperReadConfig(id int, coverage float64) ReadConfig {
	return ReadConfig{
		ReadLen:    100,
		Coverage:   coverage,
		ErrorRate5: 0.001,
		ErrorRate3: 0.02,
		Seed:       int64(1000 + id),
		AdapterLen: 8,
	}
}

// SingleGenome returns a one-genome community spec, used by the quickstart
// example and the end-to-end assembly tests.
func SingleGenome(name string, length int, seed int64) CommunitySpec {
	return CommunitySpec{
		Name: name,
		Seed: seed,
		Genera: []GenusSpec{{
			Genus: "Testus", Phylum: "Testia",
			GenomeLen: length, Abundance: 1, Divergence: 0,
		}},
	}
}
