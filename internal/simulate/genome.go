// Package simulate generates synthetic microbial communities and
// Illumina-like short reads. It stands in for the paper's NCBI SRA gut
// microbiome data sets (SRR513170, SRR513441, SRR061581): the experiments
// need (a) linear genomes, so that overlap-graph neighbourhoods correspond
// to contiguous genomic regions, (b) a community of genera with known
// phylum-level relatedness, and (c) high-coverage reads with a 3'-degrading
// error profile. All three are produced here with fixed seeds so every
// experiment is reproducible.
package simulate

import (
	"fmt"
	"math/rand"
)

// Genome is a simulated circular-free (linear) reference sequence with its
// taxonomic labels.
type Genome struct {
	ID     string
	Genus  string
	Phylum string
	Seq    []byte
}

// GenusSpec describes one genus in a community.
type GenusSpec struct {
	Genus     string
	Phylum    string
	GenomeLen int
	// Abundance is the relative share of reads sampled from this genome.
	Abundance float64
	// Divergence is the per-base substitution rate applied to the phylum
	// ancestor when deriving this genome's backbone. Real related genera
	// are well over 10% diverged outside conserved loci, so typical
	// values are 0.10-0.15: high enough that backbone reads do NOT
	// cross-align at the assembler's 90% identity threshold.
	Divergence float64
}

// CommunitySpec describes a whole simulated metagenome.
type CommunitySpec struct {
	Name   string
	Seed   int64
	Genera []GenusSpec
	// RepeatLen/RepeatCopies control intra-genome repeats: each genome gets
	// RepeatCopies copies of a shared repeat element of RepeatLen bases
	// inserted at random positions (0 disables). Repeats are what make
	// later coarsening levels over-reduce, motivating the hybrid graph.
	RepeatLen    int
	RepeatCopies int
	// Conserved segments model the loci (rRNA operons, housekeeping
	// genes) that stay near-identical between related genera: per
	// phylum, windows of ConservedLen bases covering roughly
	// ConservedFrac of the ancestor are copied into each member genome
	// with only ConservedDiv substitution. Reads from these windows are
	// what cross-connect same-phylum genera in the overlap graph — the
	// Fig. 7 signal — while the diverged backbone stays genus-specific.
	ConservedFrac float64
	ConservedLen  int
	ConservedDiv  float64
}

// Community is a realized community: the genomes plus the spec that
// produced them.
type Community struct {
	Spec    CommunitySpec
	Genomes []Genome
}

var bases = [4]byte{'A', 'C', 'G', 'T'}

func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = bases[rng.Intn(4)]
	}
	return s
}

// mutate returns a copy of seq with substitutions at the given rate.
func mutate(rng *rand.Rand, seq []byte, rate float64) []byte {
	out := append([]byte(nil), seq...)
	for i := range out {
		if rng.Float64() < rate {
			b := bases[rng.Intn(4)]
			for b == out[i] {
				b = bases[rng.Intn(4)]
			}
			out[i] = b
		}
	}
	return out
}

// BuildCommunity realizes a community spec deterministically from its seed.
func BuildCommunity(spec CommunitySpec) (*Community, error) {
	if len(spec.Genera) == 0 {
		return nil, fmt.Errorf("simulate: community %q has no genera", spec.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// One ancestor per phylum, long enough for the longest member genome.
	ancestorLen := map[string]int{}
	for _, g := range spec.Genera {
		if g.GenomeLen <= 0 {
			return nil, fmt.Errorf("simulate: genus %s has genome length %d", g.Genus, g.GenomeLen)
		}
		if g.GenomeLen > ancestorLen[g.Phylum] {
			ancestorLen[g.Phylum] = g.GenomeLen
		}
	}
	ancestors := map[string][]byte{}
	// Deterministic iteration order: walk genera, creating ancestors on
	// first sight of each phylum.
	for _, g := range spec.Genera {
		if _, ok := ancestors[g.Phylum]; !ok {
			ancestors[g.Phylum] = randomSeq(rng, ancestorLen[g.Phylum])
		}
	}

	var repeat []byte
	if spec.RepeatLen > 0 && spec.RepeatCopies > 0 {
		repeat = randomSeq(rng, spec.RepeatLen)
	}

	// Conserved window positions per phylum, chosen on the ancestor.
	conserved := map[string][][2]int{} // phylum -> [start,end) windows
	if spec.ConservedFrac > 0 && spec.ConservedLen > 0 {
		// Shortest member genome per phylum bounds window placement so
		// every member receives every window.
		minLen := map[string]int{}
		for _, g := range spec.Genera {
			if cur, ok := minLen[g.Phylum]; !ok || g.GenomeLen < cur {
				minLen[g.Phylum] = g.GenomeLen
			}
		}
		for _, g := range spec.Genera {
			p := g.Phylum
			if _, done := conserved[p]; done {
				continue
			}
			L := minLen[p]
			wl := spec.ConservedLen
			if wl > L {
				wl = L
			}
			n := int(spec.ConservedFrac*float64(L))/wl + 1
			stride := L / n
			var windows [][2]int
			for w := 0; w < n; w++ {
				start := w * stride
				end := start + wl
				if end > L {
					end = L
				}
				windows = append(windows, [2]int{start, end})
			}
			conserved[p] = windows
		}
	}

	com := &Community{Spec: spec}
	for i, g := range spec.Genera {
		ancestor := ancestors[g.Phylum][:g.GenomeLen]
		seq := mutate(rng, ancestor, g.Divergence)
		div := spec.ConservedDiv
		for _, w := range conserved[g.Phylum] {
			// Re-derive the window from the ancestor at low divergence.
			copy(seq[w[0]:w[1]], mutate(rng, ancestor[w[0]:w[1]], div))
		}
		for c := 0; c < spec.RepeatCopies && repeat != nil; c++ {
			if len(seq) <= len(repeat) {
				break
			}
			at := rng.Intn(len(seq) - len(repeat))
			copy(seq[at:], repeat)
		}
		com.Genomes = append(com.Genomes, Genome{
			ID:     fmt.Sprintf("g%02d_%s", i, g.Genus),
			Genus:  g.Genus,
			Phylum: g.Phylum,
			Seq:    seq,
		})
	}
	return com, nil
}

// TotalBases returns the summed genome length of the community.
func (c *Community) TotalBases() int {
	n := 0
	for _, g := range c.Genomes {
		n += len(g.Seq)
	}
	return n
}

// GenusOf returns the genus of a genome id, or "" if unknown.
func (c *Community) GenusOf(genomeID string) string {
	for _, g := range c.Genomes {
		if g.ID == genomeID {
			return g.Genus
		}
	}
	return ""
}
