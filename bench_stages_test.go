package focus

// Benchmarks for the post-assembly stages (scaffolding, polishing,
// evaluation, QC) and the distributed-alignment mode, rounding out the
// per-stage harness.

import (
	"testing"

	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/eval"
	"focus/internal/overlap"
	"focus/internal/polish"
	"focus/internal/qc"
	"focus/internal/scaffold"
	"focus/internal/simulate"
	"focus/internal/taxonomy"
)

// pairedFixture builds a paired-end read set plus its assembly once.
type pairedFixture struct {
	com     *simulate.Community
	rs      *simulate.ReadSet
	contigs [][]byte
}

var pairedFix *pairedFixture

func benchPaired(b *testing.B) *pairedFixture {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if pairedFix != nil {
		return pairedFix
	}
	com, err := simulate.BuildCommunity(simulate.SingleGenome("bench-paired", 15_000, 400))
	if err != nil {
		b.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 10,
		ErrorRate5: 0.001, ErrorRate3: 0.01,
		Seed: 401, Paired: true, InsertMean: 400, InsertSD: 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := Assemble(rs.Reads, DefaultConfig(), 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	pairedFix = &pairedFixture{com: com, rs: rs, contigs: res.Contigs}
	return pairedFix
}

// BenchmarkScaffold measures strand dedupe + mate-pair scaffolding.
func BenchmarkScaffold(b *testing.B) {
	f := benchPaired(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		res, err := scaffold.Build(f.contigs, f.rs.Reads, scaffold.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		n = len(res.Scaffolds)
	}
	b.ReportMetric(float64(n), "scaffolds")
}

// BenchmarkPolish measures consensus polishing by read realignment.
func BenchmarkPolish(b *testing.B) {
	f := benchPaired(b)
	kept := scaffold.Dedupe(f.contigs, scaffold.DefaultConfig())
	sub := make([][]byte, len(kept))
	for i, ci := range kept {
		sub[i] = f.contigs[ci]
	}
	b.ResetTimer()
	var corrections int
	for i := 0; i < b.N; i++ {
		_, st, err := polish.Polish(sub, f.rs.Reads, polish.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		corrections = st.Corrections
	}
	b.ReportMetric(float64(corrections), "corrections")
}

// BenchmarkEvaluate measures reference-based assembly grading.
func BenchmarkEvaluate(b *testing.B) {
	f := benchPaired(b)
	refs := []eval.Reference{{Name: "g", Seq: f.com.Genomes[0].Seq}}
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		rep, err := eval.Evaluate(f.contigs, refs, eval.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		frac = rep.GenomeFraction
	}
	b.ReportMetric(100*frac, "genome-frac-pct")
}

// BenchmarkQC measures the read QC report.
func BenchmarkQC(b *testing.B) {
	f := benchPaired(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Analyze(f.rs.Reads, qc.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifier measures taxonomy classification throughput.
func BenchmarkClassifier(b *testing.B) {
	d := benchSet(b, 2)
	var refs []taxonomy.Reference
	for _, g := range d.com.Genomes {
		refs = append(refs, taxonomy.Reference{Name: g.ID, Genus: g.Genus, Phylum: g.Phylum, Seq: g.Seq})
	}
	cls, err := taxonomy.NewClassifier(refs, 21)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range d.rs.Reads[:min(len(d.rs.Reads), 500)] {
			cls.Classify(r.Seq)
		}
	}
}

// BenchmarkDistributedAlignment contrasts local goroutine alignment with
// the RPC-distributed mode on the same reads.
func BenchmarkDistributedAlignment(b *testing.B) {
	d := benchSet(b, 1)
	cfg := overlap.DefaultConfig()
	reads := d.stages.Reads
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := overlap.FindOverlaps(reads, 4, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rpc", func(b *testing.B) {
		pool, err := dist.NewLocalPool(2, assembly.NewService)
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		for i := 0; i < b.N; i++ {
			if _, err := overlap.FindOverlapsDistributed(pool, reads, 4, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
