package focus

import (
	"testing"

	"focus/internal/partition"
	"focus/internal/simulate"
)

// TestPipelineRobustnessAcrossSeeds sweeps randomized communities through
// the full pipeline and checks structural invariants at every stage —
// the pipeline must be total over its input space, not just over the
// fixture seeds the other tests use.
func TestPipelineRobustnessAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(string(rune('A'+seed)), func(t *testing.T) {
			spec := simulate.CommunitySpec{
				Name: "fuzz",
				Seed: 9000 + seed,
				Genera: []simulate.GenusSpec{
					{Genus: "A", Phylum: "P1", GenomeLen: 3000 + int(seed)*500, Abundance: 1, Divergence: 0.12},
					{Genus: "B", Phylum: "P1", GenomeLen: 2500, Abundance: 0.5 + float64(seed)/4, Divergence: 0.12},
					{Genus: "C", Phylum: "P2", GenomeLen: 2000, Abundance: 1, Divergence: 0.10},
				},
				RepeatLen:     150,
				RepeatCopies:  int(seed % 3),
				ConservedFrac: 0.1,
				ConservedLen:  300,
				ConservedDiv:  0.02,
			}
			com, err := simulate.BuildCommunity(spec)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
				ReadLen: 100, Coverage: 7,
				ErrorRate5: 0.002, ErrorRate3: 0.015, IndelRate: 0.0005,
				Seed: 9100 + seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, s, err := Assemble(rs.Reads, testConfig(), 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			// Invariants.
			if s.Hyb.G.NumNodes() == 0 || s.G0.NumNodes() != len(s.Reads) {
				t.Fatalf("graph sizes: hyb=%d g0=%d reads=%d", s.Hyb.G.NumNodes(), s.G0.NumNodes(), len(s.Reads))
			}
			seen := map[int32]bool{}
			for _, p := range res.Paths {
				for _, v := range p {
					if seen[v] {
						t.Fatalf("node %d appears in two paths", v)
					}
					seen[v] = true
				}
			}
			if res.Stats.TotalBases == 0 {
				t.Fatal("empty assembly")
			}
			if res.Stats.N50 > res.Stats.MaxContig {
				t.Fatalf("N50 %d > max %d", res.Stats.N50, res.Stats.MaxContig)
			}
			// Partition both ways; validate.
			hres, _, err := s.PartitionHybrid(4, 2, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := partition.Validate(s.Hyb.G, hres.Labels(), 4); err != nil {
				t.Fatal(err)
			}
			mres, _, err := s.PartitionMultilevel(4, 2, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := partition.Validate(s.G0, mres.Labels(), 4); err != nil {
				t.Fatal(err)
			}
			hc, oc := s.HybridCuts(hres)
			if hc < 0 || oc < 0 || hc != oc {
				// The hybrid cut and its projection onto G0 are the same
				// sum by construction.
				t.Fatalf("cut mismatch: hybrid %d vs projected %d", hc, oc)
			}
		})
	}
}
