package focus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/testutil"
)

// cancelWhen fires cancel(cause) once the pool has finished n calls, then
// the returned stop func reaps the trigger goroutine.
func cancelWhen(pool *dist.Pool, n int64, cancel context.CancelCauseFunc, cause error) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if pool.Completions() >= n {
				cancel(cause)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// TestCancelResumeThroughFacade: a run canceled through Config.Context
// surfaces the caller's cause (IsInterrupted reports true), best-effort
// checkpoints on the way out, leaks nothing, and a -resume style rerun
// reproduces the uninterrupted baseline byte-for-byte.
func TestCancelResumeThroughFacade(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 305)

	base, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	basePool, err := dist.NewLocalPool(2, assembly.NewService)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Assemble(basePool, 2, 2, 1)
	basePool.Close()
	if err != nil {
		t.Fatal(err)
	}

	for _, after := range []int64{1, 6} {
		after := after
		t.Run(fmt.Sprintf("after%d", after), func(t *testing.T) {
			defer testutil.NoLeaks(t)
			dir := t.TempDir()
			// Like the CLI's signal cause, wrap context.Canceled so the
			// error classifies as an interruption, not a failure.
			cause := fmt.Errorf("facade cancel at %d completions: %w", after, context.Canceled)
			ctx, cancel := context.WithCancelCause(context.Background())
			defer cancel(nil)

			cfg := testConfig()
			cfg.Context = ctx
			cfg.Checkpoint = Checkpoint{Dir: dir}
			s, err := BuildStages(reads, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := dist.NewLocalPool(2, assembly.NewService)
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			stopTrigger := cancelWhen(pool, after, cancel, cause)
			defer stopTrigger()

			res, err := s.Assemble(pool, 2, 2, 1)
			if err == nil {
				// Cancel landed after the last phase: output must be intact.
				if len(res.Contigs) != len(want.Contigs) {
					t.Fatalf("late-cancel run: %d contigs, want %d", len(res.Contigs), len(want.Contigs))
				}
				return
			}
			if !IsInterrupted(err) {
				t.Fatalf("canceled run error %v not classified as interrupted", err)
			}
			if !errors.Is(err, cause) {
				t.Fatalf("canceled run error = %v, want cause %v", err, cause)
			}

			// Resume semantics: newest checkpoint if one was cut, a fresh
			// run otherwise — baseline-identical either way.
			rcfg := testConfig()
			rcfg.Checkpoint = Checkpoint{Dir: dir, Resume: true}
			rs, err := BuildStages(reads, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			pool2, err := dist.NewLocalPool(2, assembly.NewService)
			if err != nil {
				t.Fatal(err)
			}
			defer pool2.Close()
			got, err := rs.Assemble(pool2, 2, 2, 1)
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if len(got.Contigs) != len(want.Contigs) {
				t.Fatalf("contigs after resume: %d, want %d", len(got.Contigs), len(want.Contigs))
			}
			for i := range want.Contigs {
				if !bytes.Equal(got.Contigs[i], want.Contigs[i]) {
					t.Fatalf("contig %d differs after resume", i)
				}
			}
		})
	}
}

// TestDeadlineThroughFacade: Config.Deadline arms a run deadline whose
// cause is ErrDeadline; an impossible deadline interrupts the run before
// any stage output exists.
func TestDeadlineThroughFacade(t *testing.T) {
	defer testutil.NoLeaks(t)
	reads, _ := simReads(t, 3000, 5, 306)
	cfg := testConfig()
	cfg.Deadline = time.Nanosecond
	_, _, err := Assemble(reads, cfg, 2, 2)
	if err == nil {
		t.Fatal("1ns deadline run succeeded")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline run error = %v, want ErrDeadline", err)
	}
	if !IsInterrupted(err) {
		t.Fatalf("deadline error %v not classified as interrupted", err)
	}
}

// TestWatchdogThroughFacade: Config.Watchdog reaches the driver — a hung
// worker with no per-call timeout armed is detected and kicked, and the
// run completes on the survivor.
func TestWatchdogThroughFacade(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 307)
	defer testutil.NoLeaks(t)
	s, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	hang := dist.ChaosConfig{Seed: 19, HangProb: 1, HangFor: 2 * time.Second}
	pool, err := dist.NewLocalChaosPool(2, assembly.NewService, dist.Options{
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig {
		if w == 1 {
			return &hang
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s.Cfg.Watchdog = assembly.WatchdogConfig{Window: 100 * time.Millisecond}
	res, err := s.Assemble(pool, 2, 2, 1)
	if err != nil {
		t.Fatalf("watchdog-guarded run failed: %v", err)
	}
	if res.Stats.NumContigs == 0 {
		t.Fatal("watchdog-guarded run produced no contigs")
	}
	if n := pool.NumHealthy(); n != 1 {
		t.Fatalf("NumHealthy = %d, want 1 (hung worker kicked)", n)
	}
}
