package focus

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/dna"
	"focus/internal/graphio"
)

// TestBuildStagesFromRecords: records saved from one run reproduce the
// same graphs in a later run without re-alignment.
func TestBuildStagesFromRecords(t *testing.T) {
	reads, _ := simReads(t, 4000, 6, 200)
	cfg := testConfig()
	s1, err := BuildStages(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the records through the binary format.
	var buf bytes.Buffer
	if err := graphio.WriteRecords(&buf, len(s1.Reads), s1.Records); err != nil {
		t.Fatal(err)
	}
	numReads, recs, err := graphio.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildStagesFromRecords(reads, recs, numReads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.G0.NumNodes() != s1.G0.NumNodes() || s2.G0.NumEdges() != s1.G0.NumEdges() {
		t.Fatalf("graphs differ: %d/%d vs %d/%d nodes/edges",
			s2.G0.NumNodes(), s2.G0.NumEdges(), s1.G0.NumNodes(), s1.G0.NumEdges())
	}
	if s2.Hyb.G.NumNodes() != s1.Hyb.G.NumNodes() {
		t.Fatalf("hybrid graphs differ: %d vs %d nodes", s2.Hyb.G.NumNodes(), s1.Hyb.G.NumNodes())
	}
	// Mismatched read count is rejected.
	if _, err := BuildStagesFromRecords(reads[:len(reads)-5], recs, numReads, cfg); err == nil {
		t.Error("read-count mismatch accepted")
	}
}

// TestAssembleOverTCPMatchesInProcess: the same stages assembled over
// real TCP workers and over in-process workers give identical contigs.
func TestAssembleOverTCPMatchesInProcess(t *testing.T) {
	reads, _ := simReads(t, 4000, 7, 201)
	cfg := testConfig()

	var addrs []string
	for i := 0; i < 2; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer lis.Close()
		go func() { _ = dist.Serve(lis, &assembly.Service{}) }()
		addrs = append(addrs, lis.Addr().String())
	}
	tcpPool, err := dist.DialPool(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpPool.Close()

	run := func(pool *dist.Pool) *AssemblyResult {
		s, err := BuildStages(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Assemble(pool, 4, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	localPool, err := dist.NewLocalPool(2, assembly.NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer localPool.Close()

	a := run(localPool)
	b := run(tcpPool)
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if !bytes.Equal(a.Contigs[i], b.Contigs[i]) {
			t.Fatalf("contig %d differs between transports", i)
		}
	}
}

// TestVariantCallingThroughFacade: two strains with a divergent segment
// produce at least one variant call via the public API.
func TestVariantCallingThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const genomeLen, site, segLen = 9000, 4500, 120
	strainA := make([]byte, genomeLen)
	for i := range strainA {
		strainA[i] = "ACGT"[rng.Intn(4)]
	}
	strainB := append([]byte(nil), strainA...)
	for i := site; i < site+segLen; i++ {
		strainA[i] = "ACGT"[rng.Intn(4)]
		strainB[i] = "ACGT"[rng.Intn(4)]
	}
	var reads []Read
	sample := func(strain []byte, tag string, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 10*len(strain)/100; i++ {
			pos := r.Intn(len(strain) - 100)
			seq := append([]byte(nil), strain[pos:pos+100]...)
			if r.Intn(2) == 1 {
				dna.ReverseComplementInPlace(seq)
			}
			reads = append(reads, Read{ID: fmt.Sprintf("%s_%d", tag, i), Seq: seq})
		}
	}
	sample(strainA, "A", 11)
	sample(strainB, "B", 12)

	cfg := DefaultConfig()
	cfg.CallVariants = true
	res, _, err := Assemble(reads, cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) == 0 {
		t.Fatal("no variants called for a two-strain mixture")
	}
	// The call must reflect the planted segment: alleles supported by
	// multiple reads on both branches.
	found := false
	for _, v := range res.Variants {
		if v.CovA >= 2 && v.CovB >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no well-supported variant: %+v", res.Variants)
	}
	// Without the flag, no variants are reported.
	cfg.CallVariants = false
	res2, _, err := Assemble(reads, cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Variants != nil {
		t.Error("variants reported without CallVariants")
	}
}
