package focus

// One benchmark per table and figure of the paper's evaluation (§VI),
// plus ablation benches for the design constants DESIGN.md calls out.
// cmd/focus-bench prints the corresponding paper-style rows; these
// benches make the same measurements repeatable under `go test -bench`.

import (
	"fmt"
	"sync"
	"testing"

	"focus/internal/assembly"
	"focus/internal/coarsen"
	"focus/internal/debruijn"
	"focus/internal/dist"
	"focus/internal/greedyasm"
	"focus/internal/overlap"
	"focus/internal/partition"
	"focus/internal/simulate"
	"focus/internal/taxonomy"
)

const (
	benchScale    = 0.15
	benchCoverage = 6
)

type benchData struct {
	com    *simulate.Community
	rs     *simulate.ReadSet
	stages *Stages
}

var (
	benchMu    sync.Mutex
	benchCache = map[int]*benchData{}
)

// benchSet builds (once) the community, reads and pipeline stages for a
// paper data set analogue.
func benchSet(b *testing.B, id int) *benchData {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if d, ok := benchCache[id]; ok {
		return d
	}
	spec, err := simulate.PaperDataSet(id, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	com, err := simulate.BuildCommunity(spec)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.PaperReadConfig(id, benchCoverage))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Preprocess.Trim5 = 8
	cfg.Coarsen.MinNodes = 64
	s, err := BuildStages(rs.Reads, cfg)
	if err != nil {
		b.Fatal(err)
	}
	d := &benchData{com: com, rs: rs, stages: s}
	benchCache[id] = d
	return d
}

// BenchmarkTable1DataSets measures generating each synthetic data set
// (community + reads), the Table I workload.
func BenchmarkTable1DataSets(b *testing.B) {
	for id := 1; id <= 3; id++ {
		b.Run(fmt.Sprintf("D%d", id), func(b *testing.B) {
			spec, err := simulate.PaperDataSet(id, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			var bases int
			for i := 0; i < b.N; i++ {
				com, err := simulate.BuildCommunity(spec)
				if err != nil {
					b.Fatal(err)
				}
				rs, err := simulate.SimulateReads(com, simulate.PaperReadConfig(id, benchCoverage))
				if err != nil {
					b.Fatal(err)
				}
				bases = rs.TotalBases()
			}
			b.ReportMetric(float64(bases), "bases")
		})
	}
}

// BenchmarkFig4PartitionSpeedup measures hybrid-set partitioning (k=16)
// and reports the projected speedup at each processor count (Fig. 4).
func BenchmarkFig4PartitionSpeedup(b *testing.B) {
	d := benchSet(b, 1)
	for _, procs := range []int{1, 2, 4, 8, 12} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				res, _, err := d.stages.PartitionHybrid(16, procs, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				base := res.SimulatedMakespan(1)
				at := res.SimulatedMakespan(procs)
				if at > 0 {
					speedup = float64(base) / float64(at)
				}
			}
			b.ReportMetric(speedup, "x-speedup")
		})
	}
}

// BenchmarkFig5HybridVsMultilevel times partitioning of the hybrid graph
// set vs the full multilevel graph set (Fig. 5).
func BenchmarkFig5HybridVsMultilevel(b *testing.B) {
	for id := 1; id <= 3; id++ {
		d := benchSet(b, id)
		for _, k := range []int{8, 16} {
			b.Run(fmt.Sprintf("D%d/hybrid/k=%d", id, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := d.stages.PartitionHybrid(k, k/2, int64(i+1)); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("D%d/multilevel/k=%d", id, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := d.stages.PartitionMultilevel(k, k/2, int64(i+1)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2EdgeCut partitions both ways and reports the edge cuts
// on the overlap graph (Table II).
func BenchmarkTable2EdgeCut(b *testing.B) {
	for id := 1; id <= 3; id++ {
		d := benchSet(b, id)
		for _, k := range []int{8, 16} {
			b.Run(fmt.Sprintf("D%d/k=%d", id, k), func(b *testing.B) {
				var hybCut, mlCut int64
				for i := 0; i < b.N; i++ {
					hres, _, err := d.stages.PartitionHybrid(k, k/2, 1)
					if err != nil {
						b.Fatal(err)
					}
					mres, _, err := d.stages.PartitionMultilevel(k, k/2, 1)
					if err != nil {
						b.Fatal(err)
					}
					_, hybCut = d.stages.HybridCuts(hres)
					mlCut = partition.EdgeCut(d.stages.G0, mres.Labels())
				}
				b.ReportMetric(float64(hybCut), "cut-hyb")
				b.ReportMetric(float64(mlCut), "cut-ovl")
			})
		}
	}
}

// BenchmarkFig6DistributedAlgorithms times the distributed trimming and
// traversal phases per partition count and reports the k-worker projected
// times (Fig. 6).
func BenchmarkFig6DistributedAlgorithms(b *testing.B) {
	d := benchSet(b, 1)
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			pool, err := dist.NewLocalPool(2, assembly.NewService)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			var trimNs, travNs float64
			for i := 0; i < b.N; i++ {
				res, err := d.stages.Assemble(pool, k, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				trimNs = float64(res.SimTrimTime(k).Nanoseconds())
				travNs = float64(res.SimTraverseTime(k).Nanoseconds())
			}
			b.ReportMetric(trimNs, "trim-ns@k-workers")
			b.ReportMetric(travNs, "trav-ns@k-workers")
		})
	}
}

// BenchmarkTable3AssemblyStats runs the assembly per partition count and
// reports N50 / max / contig count (Table III).
func BenchmarkTable3AssemblyStats(b *testing.B) {
	d := benchSet(b, 1)
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			pool, err := dist.NewLocalPool(2, assembly.NewService)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			var st Stats
			for i := 0; i < b.N; i++ {
				res, err := d.stages.Assemble(pool, k, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			b.ReportMetric(float64(st.N50), "N50-bp")
			b.ReportMetric(float64(st.MaxContig), "max-bp")
			b.ReportMetric(float64(st.NumContigs), "contigs")
		})
	}
}

// BenchmarkFig7GenusDistribution measures read classification plus the
// genus-by-partition cross-tabulation, reporting the phylum cohesion
// contrast (Fig. 7).
func BenchmarkFig7GenusDistribution(b *testing.B) {
	d := benchSet(b, 2)
	var refs []taxonomy.Reference
	for _, g := range d.com.Genomes {
		refs = append(refs, taxonomy.Reference{Name: g.ID, Genus: g.Genus, Phylum: g.Phylum, Seq: g.Seq})
	}
	cls, err := taxonomy.NewClassifier(refs, 21)
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := d.stages.PartitionHybrid(16, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	labels := d.stages.ReadLabels(res)
	b.ResetTimer()
	var same, diff float64
	for i := 0; i < b.N; i++ {
		dst, err := taxonomy.GenusDistribution(cls, d.stages.Reads, labels, 16)
		if err != nil {
			b.Fatal(err)
		}
		same, diff = dst.PhylumCohesion()
	}
	b.ReportMetric(same, "same-phylum-cos")
	b.ReportMetric(diff, "cross-phylum-cos")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationBalanceBound varies the 1.03 balance constant.
func BenchmarkAblationBalanceBound(b *testing.B) {
	d := benchSet(b, 1)
	for _, bal := range []float64{1.01, 1.03, 1.10, 1.50} {
		b.Run(fmt.Sprintf("balance=%.2f", bal), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				opt := partition.DefaultOptions(8)
				opt.Balance = bal
				res, err := partition.PartitionSet(d.stages.Hyb.Set, opt)
				if err != nil {
					b.Fatal(err)
				}
				cut = partition.EdgeCut(d.stages.Hyb.G, res.Labels())
			}
			b.ReportMetric(float64(cut), "edge-cut")
		})
	}
}

// BenchmarkAblationEarlyStop varies the 50-move KL early-stop constant.
func BenchmarkAblationEarlyStop(b *testing.B) {
	d := benchSet(b, 1)
	for _, stop := range []int{10, 50, 200, 1 << 30} {
		b.Run(fmt.Sprintf("earlyStop=%d", stop), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				opt := partition.DefaultOptions(8)
				opt.EarlyStop = stop
				res, err := partition.PartitionSet(d.stages.Hyb.Set, opt)
				if err != nil {
					b.Fatal(err)
				}
				cut = partition.EdgeCut(d.stages.Hyb.G, res.Labels())
			}
			b.ReportMetric(float64(cut), "edge-cut")
		})
	}
}

// BenchmarkAblationKWay compares full partitioning against skipping the
// final global k-way refinement.
func BenchmarkAblationKWay(b *testing.B) {
	d := benchSet(b, 1)
	for _, skip := range []bool{false, true} {
		b.Run(fmt.Sprintf("skipKWay=%v", skip), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				opt := partition.DefaultOptions(8)
				opt.SkipKWay = skip
				res, err := partition.PartitionSet(d.stages.Hyb.Set, opt)
				if err != nil {
					b.Fatal(err)
				}
				cut = partition.EdgeCut(d.stages.Hyb.G, res.Labels())
			}
			b.ReportMetric(float64(cut), "edge-cut")
		})
	}
}

// BenchmarkAblationCoarsenLevels varies the coarsening depth (the paper's
// sets had ten levels).
func BenchmarkAblationCoarsenLevels(b *testing.B) {
	d := benchSet(b, 1)
	for _, levels := range []int{3, 6, 10} {
		b.Run(fmt.Sprintf("maxLevels=%d", levels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := coarsen.DefaultOptions()
				opt.MaxLevels = levels
				opt.MinNodes = 32
				set := coarsen.Multilevel(d.stages.G0, opt)
				if set.Coarsest().NumNodes() == 0 {
					b.Fatal("empty coarsest graph")
				}
			}
		})
	}
}

// BenchmarkAblationBand varies the banded Needleman-Wunsch band width in
// overlap detection.
func BenchmarkAblationBand(b *testing.B) {
	d := benchSet(b, 1)
	reads := d.stages.Reads[:min(len(d.stages.Reads), 600)]
	for _, band := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("band=%d", band), func(b *testing.B) {
			var found int
			for i := 0; i < b.N; i++ {
				cfg := overlap.DefaultConfig()
				cfg.Align.Band = band
				recs, err := overlap.FindOverlaps(reads, 2, cfg)
				if err != nil {
					b.Fatal(err)
				}
				found = len(recs)
			}
			b.ReportMetric(float64(found), "overlaps")
		})
	}
}

// BenchmarkAblationSeeding compares stepped k-mer sampling against
// (w,k)-minimizer seeding in overlap detection.
func BenchmarkAblationSeeding(b *testing.B) {
	d := benchSet(b, 1)
	reads := d.stages.Reads[:min(len(d.stages.Reads), 800)]
	for _, mode := range []struct {
		name string
		cfg  func() overlap.Config
	}{
		{"step", func() overlap.Config { return overlap.DefaultConfig() }},
		{"minimizer", func() overlap.Config {
			c := overlap.DefaultConfig()
			c.Seeding = overlap.SeedMinimizer
			c.MinimizerW = 8
			return c
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var found int
			for i := 0; i < b.N; i++ {
				recs, err := overlap.FindOverlaps(reads, 2, mode.cfg())
				if err != nil {
					b.Fatal(err)
				}
				found = len(recs)
			}
			b.ReportMetric(float64(found), "overlaps")
		})
	}
}

// BenchmarkAblationTransport compares the two wire protocols: stateless
// (each phase reships its partition subgraphs) vs stateful (partitions
// shipped once, phases send removal deltas only).
func BenchmarkAblationTransport(b *testing.B) {
	d := benchSet(b, 1)
	for _, stateful := range []bool{false, true} {
		name := "stateless"
		if stateful {
			name = "stateful-delta"
		}
		b.Run(name, func(b *testing.B) {
			pool, err := dist.NewLocalPool(2, assembly.NewService)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			cfg := d.stages.Cfg
			cfg.Assembly.Stateful = stateful
			stages := *d.stages
			stages.Cfg = cfg
			for i := 0; i < b.N; i++ {
				if _, err := stages.Assemble(pool, 4, 2, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineDeBruijn contrasts the de Bruijn baseline (the model
// family the paper positions Focus against) with the Focus overlap-graph
// pipeline on the same read set, reporting both N50s.
func BenchmarkBaselineDeBruijn(b *testing.B) {
	d := benchSet(b, 1)
	b.Run("debruijn", func(b *testing.B) {
		var n50 int
		for i := 0; i < b.N; i++ {
			contigs, err := debruijn.Assemble(d.stages.Reads, debruijn.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			n50 = assembly.ComputeStats(contigs).N50
		}
		b.ReportMetric(float64(n50), "N50-bp")
	})
	b.Run("greedy", func(b *testing.B) {
		var n50 int
		for i := 0; i < b.N; i++ {
			contigs := greedyasm.AssembleFromRecords(d.stages.Reads, d.stages.Records, greedyasm.DefaultConfig())
			n50 = assembly.ComputeStats(contigs).N50
		}
		b.ReportMetric(float64(n50), "N50-bp")
	})
	b.Run("focus", func(b *testing.B) {
		pool, err := dist.NewLocalPool(2, assembly.NewService)
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		var n50 int
		for i := 0; i < b.N; i++ {
			res, err := d.stages.Assemble(pool, 4, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			n50 = res.Stats.N50
		}
		b.ReportMetric(float64(n50), "N50-bp")
	})
}

// BenchmarkVariantCalling measures the distributed variant scan (the
// paper's future-work extension).
func BenchmarkVariantCalling(b *testing.B) {
	d := benchSet(b, 2)
	dg, err := assembly.BuildDiGraph(d.stages.Hyb, d.stages.Records)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := dist.NewLocalPool(2, assembly.NewService)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	labels := make([]int32, dg.NumNodes())
	for v := range labels {
		labels[v] = int32(v % 4)
	}
	drv, err := assembly.NewDriver(pool, dg, labels, 4, assembly.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var calls int
	for i := 0; i < b.N; i++ {
		vars, err := drv.CallVariants(assembly.DefaultVariantConfig())
		if err != nil {
			b.Fatal(err)
		}
		calls = len(vars)
	}
	b.ReportMetric(float64(calls), "calls")
}

// BenchmarkPipeline measures the whole pipeline end to end.
func BenchmarkPipeline(b *testing.B) {
	spec, err := simulate.PaperDataSet(1, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	com, err := simulate.BuildCommunity(spec)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.PaperReadConfig(1, 5))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Preprocess.Trim5 = 8
	cfg.Coarsen.MinNodes = 16
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Assemble(rs.Reads, cfg, 4, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
