// Metagenome: simulate a ten-genus gut community, partition the hybrid
// graph 16 ways, classify the reads, and print the genus-by-partition
// heat map — the paper's Fig. 7 experiment, showing that graph
// partitioning exposes microbial community structure.
//
//	go run ./examples/metagenome
package main

import (
	"fmt"
	"log"
	"os"

	"focus"
	"focus/internal/metrics"
	"focus/internal/simulate"
	"focus/internal/taxonomy"
)

func main() {
	// 1. Simulate the D2 analogue (ten genera across three phyla).
	spec, err := simulate.PaperDataSet(2, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	com, err := simulate.BuildCommunity(spec)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.PaperReadConfig(2, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community: %d genomes, %d bases; %d reads\n",
		len(com.Genomes), com.TotalBases(), len(rs.Reads))

	// 2. Build the graphs and partition the hybrid set into 16 parts.
	cfg := focus.DefaultConfig()
	cfg.Preprocess.Trim5 = 8 // simulated adapter
	stages, err := focus.BuildStages(rs.Reads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, dt, err := stages.PartitionHybrid(16, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid graph: %d nodes; partitioned 16 ways in %s\n",
		stages.Hyb.G.NumNodes(), dt.Round(1e6))

	// 3. Classify reads against the references and cross-tabulate genus
	// by partition.
	var refs []taxonomy.Reference
	for _, g := range com.Genomes {
		refs = append(refs, taxonomy.Reference{Name: g.ID, Genus: g.Genus, Phylum: g.Phylum, Seq: g.Seq})
	}
	cls, err := taxonomy.NewClassifier(refs, 21)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := taxonomy.GenusDistribution(cls, stages.Reads, stages.ReadLabels(res), 16)
	if err != nil {
		log.Fatal(err)
	}

	var names []string
	var rows [][]float64
	frac := dist.Fraction()
	for _, g := range dist.TopGenera(10) {
		names = append(names, fmt.Sprintf("%s (%s)", dist.Genera[g], dist.Phyla[g]))
		rows = append(rows, frac[g])
	}
	fmt.Println("\nfraction of each genus's reads per partition (darker = more):")
	metrics.Heatmap(os.Stdout, "", names, rows)

	same, diff := dist.PhylumCohesion()
	fmt.Printf("\nsame-phylum partition-profile similarity %.3f vs cross-phylum %.3f\n", same, diff)
	if same > diff {
		fmt.Println("=> related genera co-cluster in the same partitions, as in the paper")
	}

	// 4. Depth-normalized community composition.
	fmt.Println("\nestimated community composition (depth-normalized):")
	for _, a := range taxonomy.EstimateAbundance(cls, stages.Reads) {
		fmt.Printf("  %-18s %-14s %5.1f%%  (%d reads, %.1fx depth)\n",
			a.Genus, a.Phylum, 100*a.Fraction, a.Reads, a.Depth)
	}
}
