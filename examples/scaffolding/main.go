// Scaffolding: simulate a paired-end library, assemble contigs with the
// Focus pipeline, deduplicate the double-stranded output, and order the
// contigs into scaffolds using mate-pair links — then grade the result
// against the reference with the built-in evaluator.
//
//	go run ./examples/scaffolding
package main

import (
	"fmt"
	"log"

	"focus"
	"focus/internal/assembly"
	"focus/internal/eval"
	"focus/internal/scaffold"
	"focus/internal/simulate"
)

func main() {
	// 1. One 25 kb genome, 400±40 bp paired-end library at 10x.
	com, err := simulate.BuildCommunity(simulate.SingleGenome("scaf", 25_000, 31))
	if err != nil {
		log.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 10,
		ErrorRate5: 0.001, ErrorRate3: 0.012,
		Seed: 32, Paired: true, InsertMean: 400, InsertSD: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d read pairs, insert 400±40, genome %d bp\n", len(rs.Reads)/2, com.TotalBases())

	// 2. Assemble.
	res, _, err := focus.Assemble(rs.Reads, focus.DefaultConfig(), 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	cstats := res.Stats
	fmt.Printf("contigs:   %d (N50 %d bp, max %d bp) — both strands\n",
		cstats.NumContigs, cstats.N50, cstats.MaxContig)

	// 3. Scaffold with the mate pairs.
	scfg := scaffold.DefaultConfig()
	scfg.InsertMean, scfg.InsertSD = 400, 40
	sres, err := scaffold.Build(res.Contigs, rs.Reads, scfg)
	if err != nil {
		log.Fatal(err)
	}
	sstats := assembly.ComputeStats(sres.Sequences)
	fmt.Printf("scaffolds: %d from %d strand-deduplicated contigs via %d link bundles (N50 %d bp, max %d bp)\n",
		sstats.NumContigs, len(sres.Kept), sres.Links, sstats.N50, sstats.MaxContig)

	// 4. Grade both against the reference.
	refs := []eval.Reference{{Name: com.Genomes[0].ID, Seq: com.Genomes[0].Seq}}
	crep, err := eval.Evaluate(res.Contigs, refs, eval.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	srep, err := eval.Evaluate(sres.Sequences, refs, eval.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontigs:   %s\n", crep.Summary())
	fmt.Printf("scaffolds: %s\n", srep.Summary())
	if sstats.N50 > cstats.N50 {
		fmt.Printf("=> mate pairs raised N50 %d -> %d bp\n", cstats.N50, sstats.N50)
	}
}
