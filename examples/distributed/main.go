// Distributed: start real TCP RPC workers (the same service that
// cmd/focus-worker daemonizes), connect a pool to them, and run the
// distributed trimming and traversal phases against them — the paper's
// master/worker model over sockets instead of MPI ranks.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"

	"focus"
	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/simulate"
)

func main() {
	// 1. Start three workers on loopback TCP ports (in production these
	// are `focus-worker -listen ...` processes on other machines).
	var addrs []string
	for i := 0; i < 3; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer lis.Close()
		go func() { _ = dist.Serve(lis, &assembly.Service{}) }()
		addrs = append(addrs, lis.Addr().String())
	}
	fmt.Printf("started %d TCP workers: %v\n", len(addrs), addrs)

	// 2. Simulate reads and connect the master's pool.
	com, err := simulate.BuildCommunity(simulate.SingleGenome("dist-demo", 15_000, 21))
	if err != nil {
		log.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 10, ErrorRate5: 0.001, ErrorRate3: 0.008, Seed: 22,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := dist.DialPool(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// 3. Fully distributed: read alignment AND graph phases run on the
	// TCP workers (paper §II.B sends subset pairs to processors too).
	stages, err := focus.BuildStagesOnPool(rs.Reads, focus.DefaultConfig(), pool)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed alignment: %d overlaps in %s\n",
		len(stages.Records), stages.Timings["overlap"].Round(1e6))
	res, err := stages.Assemble(pool, 8, pool.Size(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid graph: %d nodes over 8 partitions on %d workers\n",
		stages.Hyb.G.NumNodes(), pool.Size())
	fmt.Printf("trim: %s (tasks: %d+%d+%d), traversal: %s\n",
		res.TrimTime.Round(1e6),
		len(res.Trim.PhaseTaskTimes[0]), len(res.Trim.PhaseTaskTimes[1]), len(res.Trim.PhaseTaskTimes[2]),
		res.TraverseTime.Round(1e6))
	fmt.Printf("assembly: %d contigs, N50 %d bp, max %d bp (genome %d bp)\n",
		res.Stats.NumContigs, res.Stats.N50, res.Stats.MaxContig, com.TotalBases())
}
