// Variants: the paper's stated future work (§VI.D) — "variant detection
// algorithms can be implemented to be run on the distributed hybrid
// graph". Two bacterial strains share a genome except for a divergent
// segment; reads from the mixed sample build a hybrid graph in which the
// strains' alleles form branch clusters, and the distributed variant
// caller reports the event before graph trimming pops it.
//
//	go run ./examples/variants
package main

import (
	"fmt"
	"log"
	"math/rand"

	"focus"
	"focus/internal/dna"
)

func main() {
	// 1. Two strains: identical 12 kb backbones, each carrying its own
	// allele of a 120 bp segment at position 6000.
	rng := rand.New(rand.NewSource(5))
	const genomeLen, site, segLen = 12000, 6000, 120
	strainA := make([]byte, genomeLen)
	for i := range strainA {
		strainA[i] = "ACGT"[rng.Intn(4)]
	}
	strainB := append([]byte(nil), strainA...)
	for i := site; i < site+segLen; i++ {
		strainA[i] = "ACGT"[rng.Intn(4)]
		strainB[i] = "ACGT"[rng.Intn(4)]
	}

	// 2. Sample 10x reads from each strain (a mixed isolate).
	var reads []focus.Read
	sample := func(strain []byte, tag string, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 10*len(strain)/100; i++ {
			pos := r.Intn(len(strain) - 100)
			seq := append([]byte(nil), strain[pos:pos+100]...)
			if r.Intn(2) == 1 {
				dna.ReverseComplementInPlace(seq)
			}
			reads = append(reads, focus.Read{ID: fmt.Sprintf("%s_%d", tag, i), Seq: seq})
		}
	}
	sample(strainA, "A", 11)
	sample(strainB, "B", 12)
	fmt.Printf("mixed sample: %d reads from two strains differing in a %d bp segment\n", len(reads), segLen)

	// 3. Assemble with variant calling enabled.
	cfg := focus.DefaultConfig()
	cfg.CallVariants = true
	res, stages, err := focus.Assemble(reads, cfg, 4, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid graph: %d nodes; %d contigs (N50 %d bp)\n",
		stages.Hyb.G.NumNodes(), res.Stats.NumContigs, res.Stats.N50)
	fmt.Printf("variants called: %d\n", len(res.Variants))
	for _, v := range res.Variants {
		shape := "fork"
		if v.Reconverges {
			shape = "bubble"
		}
		fmt.Printf("  %-12s (%s) alleles: clusters %d/%d, support %d/%d reads, contigs %d/%d bp, identity %.3f\n",
			v.Kind, shape, v.AlleleA, v.AlleleB, v.CovA, v.CovB, v.LenA, v.LenB, v.Identity)
	}
	if len(res.Variants) > 0 {
		fmt.Println("=> the strain divergence was detected on the distributed hybrid graph")
	}
}
