// Quickstart: simulate a small genome, assemble it with the full Focus
// pipeline on an in-process worker pool, and print the contigs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"focus"
	"focus/internal/simulate"
)

func main() {
	// 1. Simulate a 20 kb genome at 12x coverage with Illumina-like
	// errors (in a real run these come from FASTQ input instead).
	com, err := simulate.BuildCommunity(simulate.SingleGenome("demo", 20_000, 7))
	if err != nil {
		log.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 12,
		ErrorRate5: 0.001, ErrorRate3: 0.01,
		Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d reads from a %d bp genome\n", len(rs.Reads), com.TotalBases())

	// 2. Assemble: 4 graph partitions on 2 RPC workers.
	cfg := focus.DefaultConfig()
	res, stages, err := focus.Assemble(rs.Reads, cfg, 4, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report.
	fmt.Printf("overlap graph: %d nodes, %d edges\n", stages.G0.NumNodes(), stages.G0.NumEdges())
	fmt.Printf("multilevel set: %d levels; hybrid graph: %d nodes\n",
		len(stages.MSet.Levels), stages.Hyb.G.NumNodes())
	fmt.Printf("trimming removed: %d transitive edges, %d contained nodes, %d false edges, %d tips/bubbles\n",
		res.Trim.TransitiveEdges, res.Trim.ContainedNodes, res.Trim.FalseEdges, res.Trim.DeadEndNodes)
	fmt.Printf("assembly: %d contigs, N50 %d bp, max contig %d bp (genome %d bp)\n",
		res.Stats.NumContigs, res.Stats.N50, res.Stats.MaxContig, com.TotalBases())
	for i, c := range res.Contigs {
		if len(c) >= 1000 {
			fmt.Printf("  contig %d: %d bp  %s...\n", i, len(c), c[:48])
		}
	}
}
