// Partitioning: compare partitioning the hybrid graph set (the paper's
// biology-aware scheme) against partitioning the full multilevel graph
// set (the naive baseline) — runtime and overlap-graph edge cut, the
// paper's Fig. 5 / Table II experiment in miniature.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"
	"os"

	"focus"
	"focus/internal/metrics"
	"focus/internal/partition"
	"focus/internal/simulate"
)

func main() {
	spec, err := simulate.PaperDataSet(1, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	com, err := simulate.BuildCommunity(spec)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.PaperReadConfig(1, 8))
	if err != nil {
		log.Fatal(err)
	}

	cfg := focus.DefaultConfig()
	cfg.Preprocess.Trim5 = 8
	stages, err := focus.BuildStages(rs.Reads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlap graph G0: %d nodes, %d edges (total edge weight %d)\n",
		stages.G0.NumNodes(), stages.G0.NumEdges(), stages.G0.TotalEdgeWeight())
	fmt.Printf("multilevel set: %d levels; hybrid graph G'0: %d nodes, %d edges\n\n",
		len(stages.MSet.Levels), stages.Hyb.G.NumNodes(), stages.Hyb.G.NumEdges())

	t := &metrics.Table{Headers: []string{"k", "Hybrid time", "Multilevel time", "Ratio", "Cut (hyb->G0)", "Cut (multilevel)", "Cut % of total"}}
	for _, k := range []int{8, 16, 32} {
		hres, ht, err := stages.PartitionHybrid(k, k/2, 1)
		if err != nil {
			log.Fatal(err)
		}
		mres, mt, err := stages.PartitionMultilevel(k, k/2, 1)
		if err != nil {
			log.Fatal(err)
		}
		_, hybCut := stages.HybridCuts(hres)
		mCut := partition.EdgeCut(stages.G0, mres.Labels())
		pct := 100 * float64(hybCut) / float64(stages.G0.TotalEdgeWeight())
		t.AddRow(k, ht, mt, float64(mt)/float64(ht), hybCut, mCut, fmt.Sprintf("%.3f%%", pct))
	}
	t.Render(os.Stdout)
	fmt.Println("\nThe paper's claims: hybrid-set partitioning takes roughly half the time")
	fmt.Println("of multilevel-set partitioning, with an equal or better edge cut.")
}
