package focus

import (
	"bytes"
	"testing"

	"focus/internal/eval"
	"focus/internal/simulate"
)

// simReads generates a small error-bearing read set from a single genome.
func simReads(t *testing.T, genomeLen int, coverage float64, seed int64) ([]Read, []byte) {
	t.Helper()
	com, err := simulate.BuildCommunity(simulate.SingleGenome("t", genomeLen, seed))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: coverage,
		ErrorRate5: 0.001, ErrorRate3: 0.01,
		Seed: seed + 1, AdapterLen: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs.Reads, com.Genomes[0].Seq
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Preprocess.Trim5 = 6 // strip the simulated adapter
	cfg.Subsets = 2
	cfg.Overlap.Workers = 2
	cfg.Coarsen.MinNodes = 8
	return cfg
}

func TestBuildStages(t *testing.T) {
	reads, _ := simReads(t, 4000, 6, 100)
	s, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reads) == 0 || len(s.Records) == 0 {
		t.Fatalf("reads=%d records=%d", len(s.Reads), len(s.Records))
	}
	// Reverse complements were added.
	if len(s.Reads) < len(reads) {
		t.Errorf("expected RC augmentation: %d -> %d", len(reads), len(s.Reads))
	}
	if s.G0.NumNodes() != len(s.Reads) {
		t.Errorf("G0 has %d nodes for %d reads", s.G0.NumNodes(), len(s.Reads))
	}
	if len(s.MSet.Levels) < 2 {
		t.Errorf("only %d multilevel levels", len(s.MSet.Levels))
	}
	if s.Hyb.G.NumNodes() >= s.G0.NumNodes() {
		t.Errorf("hybrid graph not reduced: %d vs %d", s.Hyb.G.NumNodes(), s.G0.NumNodes())
	}
	for _, stage := range []string{"preprocess", "overlap", "graph", "coarsen", "hybrid"} {
		if _, ok := s.Timings[stage]; !ok {
			t.Errorf("missing timing for %s", stage)
		}
	}
}

func TestPartitionBothSchemes(t *testing.T) {
	reads, _ := simReads(t, 5000, 6, 101)
	s, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	hres, _, err := s.PartitionHybrid(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mres, _, err := s.PartitionMultilevel(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	hc, oc := s.HybridCuts(hres)
	if hc < 0 || oc < 0 {
		t.Fatalf("cuts %d %d", hc, oc)
	}
	// Edge cut sanity: small relative to total edge weight (paper:
	// < 0.43% on real data; generous bound here).
	if float64(oc) > 0.2*float64(s.G0.TotalEdgeWeight()) {
		t.Errorf("overlap cut %d vs total %d", oc, s.G0.TotalEdgeWeight())
	}
	mc := int64(0)
	for _, l := range mres.Labels() {
		_ = l
	}
	mc = edgeCutOnG0(s, mres.Labels())
	if mc < 0 {
		t.Fatal("negative cut")
	}
	// Read labels cover every read.
	rl := s.ReadLabels(hres)
	if len(rl) != len(s.Reads) {
		t.Fatalf("read labels %d for %d reads", len(rl), len(s.Reads))
	}
}

func edgeCutOnG0(s *Stages, labels []int32) int64 {
	var cut int64
	for v := 0; v < s.G0.NumNodes(); v++ {
		for _, a := range s.G0.Adj(v) {
			if a.To > v && labels[v] != labels[a.To] {
				cut += a.W
			}
		}
	}
	return cut
}

func TestAssembleEndToEnd(t *testing.T) {
	reads, genome := simReads(t, 4000, 8, 102)
	res, s, err := Assemble(reads, testConfig(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumContigs == 0 {
		t.Fatal("no contigs")
	}
	if res.Stats.MaxContig < len(genome)/3 {
		t.Errorf("max contig %d for %d bp genome", res.Stats.MaxContig, len(genome))
	}
	// Reference-based check: the assembly must reconstruct most of the
	// genome without misassemblies.
	rep, err := eval.Evaluate(res.Contigs, []eval.Reference{{Name: "g", Seq: genome}}, eval.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.90 {
		t.Errorf("genome fraction = %.3f, want >= 0.90 (%s)", rep.GenomeFraction, rep.Summary())
	}
	if rep.Misassemblies > 1 {
		t.Errorf("misassemblies = %d (%s)", rep.Misassemblies, rep.Summary())
	}
	// Long contigs must closely match the genome (either strand). With
	// sequencing errors the consensus retains occasional mismatches at
	// low-coverage columns, so sample 40-mers and require a solid hit
	// rate rather than exact long-window containment.
	rc := reverseComplement(genome)
	for _, c := range res.Contigs {
		if len(c) < 500 {
			continue
		}
		matches, samples := 0, 0
		for at := 0; at+40 <= len(c); at += 40 {
			samples++
			if bytes.Contains(genome, c[at:at+40]) || bytes.Contains(rc, c[at:at+40]) {
				matches++
			}
		}
		if samples > 0 && matches*10 < samples*6 {
			t.Errorf("contig of %d bp matches genome in only %d/%d samples", len(c), matches, samples)
		}
	}
	if s == nil {
		t.Fatal("stages nil")
	}
}

func reverseComplement(seq []byte) []byte {
	comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A', 'N': 'N'}
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = comp[b]
	}
	return out
}

func TestAssembleConsistencyAcrossK(t *testing.T) {
	// Table III's property: assembly statistics are stable across
	// partition counts.
	reads, _ := simReads(t, 5000, 8, 103)
	s, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats := map[int]Stats{}
	for _, k := range []int{1, 2, 4} {
		res, _, err := Assemble(reads, testConfig(), k, 2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		stats[k] = res.Stats
	}
	base := stats[1]
	for _, k := range []int{2, 4} {
		st := stats[k]
		if st.MaxContig < base.MaxContig/2 {
			t.Errorf("k=%d: max contig %d far below k=1's %d", k, st.MaxContig, base.MaxContig)
		}
	}
	_ = s
}

// TestAssembleWithIndels: the banded alignment absorbs 1bp indels, so the
// pipeline still assembles most of the genome.
func TestAssembleWithIndels(t *testing.T) {
	com, err := simulate.BuildCommunity(simulate.SingleGenome("ind", 4000, 105))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 10,
		ErrorRate5: 0.001, ErrorRate3: 0.01, IndelRate: 0.001,
		Seed: 106,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Preprocess.Trim5 = 0
	res, _, err := Assemble(rs.Reads, cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.Evaluate(res.Contigs, []eval.Reference{{Name: "g", Seq: com.Genomes[0].Seq}}, eval.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.80 {
		t.Errorf("genome fraction %.3f with indel reads (%s)", rep.GenomeFraction, rep.Summary())
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, _, err := Assemble(nil, testConfig(), 2, 1); err == nil {
		t.Error("empty read set accepted")
	}
	reads, _ := simReads(t, 3000, 5, 104)
	cfg := testConfig()
	cfg.Overlap.K = 0
	if _, _, err := Assemble(reads, cfg, 2, 1); err == nil {
		t.Error("invalid overlap config accepted")
	}
}
