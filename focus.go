// Package focus is a from-scratch Go implementation of the Focus parallel
// NGS assembler of Warnke-Sommer & Ali, "Parallel NGS Assembly Using
// Distributed Assembly Graphs Enriched with Biological Knowledge"
// (IEEE IPDPSW 2017).
//
// The pipeline mirrors the paper: read preprocessing, k-mer seeded
// pairwise overlap alignment over a per-subset seed index (a packed
// k-mer table by default; the paper's suffix array remains selectable
// via Config.Overlap.Indexing), overlap graph
// construction, multilevel coarsening by heavy-edge matching, hybrid
// graph construction from best-representative read clusters, multilevel
// graph partitioning (greedy growing + Kernighan–Lin + global k-way
// refinement), and distributed graph trimming/traversal on an RPC
// master/worker pool, ending in contigs.
//
// The one-call entry point is Assemble; BuildStages exposes the
// intermediate artifacts (overlap graph, multilevel set, hybrid graph)
// that the benchmark harness measures individually.
package focus

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"focus/internal/assembly"
	"focus/internal/checkpoint"
	"focus/internal/coarsen"
	"focus/internal/dist"
	"focus/internal/dna"
	"focus/internal/graph"
	"focus/internal/hybrid"
	"focus/internal/metrics"
	"focus/internal/overlap"
	"focus/internal/partition"
	"focus/internal/preprocess"
)

// Read is a sequencing read (re-exported for API users).
type Read = dna.Read

// Stats are assembly quality statistics (N50, max contig, contig count).
type Stats = assembly.Stats

// TrimStats report what distributed graph trimming removed.
type TrimStats = assembly.TrimStats

// Indexing selects the overlap-stage seed index (re-exported so API users
// outside the module can set Config.Overlap.Indexing).
type Indexing = overlap.Indexing

const (
	// IndexKmerTable is the default packed k-mer seed index (fastest).
	IndexKmerTable = overlap.IndexKmerTable
	// IndexSuffixArray selects the paper's Larsson–Sadakane suffix array.
	IndexSuffixArray = overlap.IndexSuffixArray
)

// Engine selects the overlap-stage candidate-generation engine
// (re-exported so API users outside the module can set
// Config.Overlap.Engine). All engines produce byte-identical overlap
// records.
type Engine = overlap.Engine

const (
	// EngineSeedIndex is the default per-probe seed-index engine (the
	// structure is picked by Config.Overlap.Indexing).
	EngineSeedIndex = overlap.EngineSeedIndex
	// EngineSpGEMM derives candidate pairs as a masked sparse
	// matrix product over the read-by-k-mer matrix (internal/spmat) —
	// faster candidate generation on repeat-heavy inputs.
	EngineSpGEMM = overlap.EngineSpGEMM
)

// PhaseEngine selects the graph-cleaning scan implementation
// (re-exported so API users outside the module can set
// Config.Assembly.Engine). Both engines return byte-identical removals.
type PhaseEngine = assembly.PhaseEngine

const (
	// PhaseEngineCSR is the default engine: scans run over a flat CSR
	// adjacency view with the transitive-reduction pass phrased as a
	// masked sparse product, row-blocked across the par governor.
	PhaseEngineCSR = assembly.PhaseEngineCSR
	// PhaseEngineMap is the reference map-walking engine the CSR
	// kernels are property-tested against.
	PhaseEngineMap = assembly.PhaseEngineMap
)

// Config bundles the per-stage configurations.
type Config struct {
	Preprocess preprocess.Config
	// Subsets is the number of read subsets for parallel alignment
	// (paper §II.A-B).
	Subsets  int
	Overlap  overlap.Config
	Coarsen  coarsen.Options
	Hybrid   hybrid.Config
	Assembly assembly.Config
	// GraphWorkers bounds the worker pools of the graph-construction
	// stages: the overlap-graph CSR edge merge, coarsening
	// (matching + contraction), the hybrid layout search and the CSR
	// graph-cleaning scans. 0 means
	// auto: the internal/par governor picks serial or parallel per stage
	// invocation from the input size and GOMAXPROCS, so small inputs skip
	// goroutine fan-out entirely. Explicit counts are still capped at
	// GOMAXPROCS. Purely a throughput knob — stage outputs are identical
	// at any value. Per-stage knobs (Coarsen.Workers, Hybrid.Workers)
	// take precedence when set.
	GraphWorkers int
	// CallVariants enables distributed variant detection (the paper's
	// §VI.D future-work extension): bubbles are classified and reported
	// before the error-removal phase pops them.
	CallVariants bool
	Variants     assembly.VariantConfig
	// Dist configures the worker pool's fault tolerance (per-call
	// deadlines, eviction thresholds, reconnect backoff) for pools the
	// pipeline creates itself (Assemble). The zero value disables
	// deadlines.
	Dist dist.Options
	// Checkpoint configures crash-safe phase-boundary checkpointing of
	// the distributed assembly phases. The zero value disables it.
	Checkpoint Checkpoint
	// Context, when set, bounds the whole run: cancel it and every stage
	// — local worker pools at their grain boundaries, in-flight RPCs by
	// severing the connection — unwinds and the pipeline returns the
	// cancellation cause. nil means the run is unbounded.
	Context context.Context
	// Deadline, when positive, is the run's wall-clock budget. The
	// one-call entry points (Assemble, AssembleOnPool) derive a deadline
	// context from Context at start; the assembly driver further splits
	// the remaining time into per-phase budgets weighted by measured
	// phase cost. Callers driving Stages manually apply it with
	// RunContext.
	Deadline time.Duration
	// Watchdog arms the assembly-phase progress watchdog: if no task
	// completions are observed for Watchdog.Window, stuck workers are
	// kicked (connection severed, tasks rescheduled) and, when kicking is
	// exhausted, the run is canceled with assembly.ErrStalled. The zero
	// value disarms it.
	Watchdog assembly.WatchdogConfig
	// Metrics, when set, receives the run's operational metrics (re-host /
	// degradation counters, per-phase latency histograms). A resident
	// master shares one registry across every job it hosts. Nil disables
	// instrumentation.
	Metrics *metrics.Registry
	// PhaseCosts, when set, replaces the driver's private per-phase cost
	// model for deadline budgeting, letting a resident master pool phase-
	// duration observations across jobs. Nil keeps the per-run default.
	PhaseCosts *metrics.CostModel
}

// ErrDeadline is the cancellation cause installed when Config.Deadline
// expires.
var ErrDeadline = errors.New("focus: run deadline exceeded")

// RunContext derives the run's root context from cfg: Config.Context (or
// context.Background) with Config.Deadline applied as an absolute
// deadline whose cause is ErrDeadline. The returned stop func releases
// the deadline timer; callers must invoke it when the run ends.
func (cfg Config) RunContext() (context.Context, context.CancelFunc) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Deadline > 0 {
		return context.WithDeadlineCause(ctx, time.Now().Add(cfg.Deadline), ErrDeadline)
	}
	return ctx, func() {}
}

// IsInterrupted reports whether err is a cancellation outcome — user
// cancel, run deadline, phase-budget exhaustion, or a watchdog stall —
// rather than a pipeline failure. An interrupted run with checkpointing
// enabled leaves a resumable checkpoint behind.
func IsInterrupted(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, assembly.ErrPhaseBudget) ||
		errors.Is(err, assembly.ErrStalled)
}

// ctxErr returns nil while ctx is live and the cancellation cause once it
// is done; a nil ctx is never done.
func ctxErr(ctx context.Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	return context.Cause(ctx)
}

// Checkpoint configures durable assembly state: with Dir set, the master
// serializes its graph, removal journal and phase counters into an
// atomic, CRC-framed checkpoint file after phase boundaries; with Resume
// also set, Stages.Assemble restarts from the newest valid checkpoint in
// Dir (skipping the phases it records) instead of rebuilding the
// assembly graph, and produces output identical to an uninterrupted run.
type Checkpoint struct {
	// Dir receives checkpoint files; empty disables checkpointing.
	Dir string
	// Every writes a checkpoint at every Nth phase boundary (<= 1: all).
	Every int
	// Resume restarts from the newest valid checkpoint in Dir. When Dir
	// holds no checkpoint at all the run starts fresh; when it holds only
	// corrupt ones the run fails loudly rather than silently restarting.
	Resume bool
	// Job, when non-empty, claims Dir as this job's checkpoint namespace:
	// the first run stamps Dir with the job id, and any later run claiming
	// it under a different id fails with checkpoint.ErrNamespace instead
	// of silently interleaving two jobs' checkpoint frames. Empty skips
	// the ownership check (single-tenant compatibility).
	Job string
}

// Variant is a distributed variant call (re-exported).
type Variant = assembly.Variant

// DefaultConfig mirrors the paper's published parameters: 50 bp minimum
// overlap at 90% identity, 1.03 balance, 50-move KL early stop, ~10 graph
// levels.
func DefaultConfig() Config {
	cfg := Config{
		Preprocess: preprocess.Config{
			Window:     10,
			Step:       1,
			MinQuality: 12,
			MinLen:     40,
			AddReverse: true,
		},
		Subsets:  4,
		Overlap:  overlap.DefaultConfig(),
		Coarsen:  coarsen.DefaultOptions(),
		Hybrid:   hybrid.DefaultConfig(),
		Assembly: assembly.DefaultConfig(),
	}
	// Keep enough coarsest-level nodes for up to 64-way partitioning.
	cfg.Coarsen.MinNodes = 128
	cfg.Variants = assembly.DefaultVariantConfig()
	return cfg
}

// applyGraphWorkers propagates Config.GraphWorkers into the per-stage
// worker knobs that are still unset.
func (cfg Config) applyGraphWorkers() Config {
	if cfg.GraphWorkers > 0 {
		if cfg.Coarsen.Workers == 0 {
			cfg.Coarsen.Workers = cfg.GraphWorkers
		}
		if cfg.Hybrid.Workers == 0 {
			cfg.Hybrid.Workers = cfg.GraphWorkers
		}
		if cfg.Assembly.Workers == 0 {
			cfg.Assembly.Workers = cfg.GraphWorkers
		}
	}
	return cfg
}

// Stages holds every intermediate pipeline artifact.
type Stages struct {
	Cfg      Config
	Reads    []Read // preprocessed reads; index = overlap graph node id
	PreStats preprocess.Stats
	Records  []overlap.Record
	G0       *graph.Graph // the overlap graph
	MSet     *graph.Set   // multilevel graph set {G0…Gn}
	Hyb      *hybrid.Hybrid
	Timings  map[string]time.Duration
}

// BuildStages runs the pipeline through hybrid graph construction.
// With Config.Context set, every stage is cancellation-bounded and the
// first canceled stage aborts the build with the context's cause.
func BuildStages(raw []Read, cfg Config) (*Stages, error) {
	cfg = cfg.applyGraphWorkers()
	ctx := cfg.Context
	s := &Stages{Cfg: cfg, Timings: map[string]time.Duration{}}
	step := func(name string, f func() error) error {
		if cerr := ctxErr(ctx); cerr != nil {
			return fmt.Errorf("focus: %s: %w", name, cerr)
		}
		t0 := time.Now()
		err := f()
		s.Timings[name] = time.Since(t0)
		if err != nil {
			return fmt.Errorf("focus: %s: %w", name, err)
		}
		return nil
	}
	if err := step("preprocess", func() error {
		var err error
		s.Reads, s.PreStats, err = preprocess.Run(raw, cfg.Preprocess)
		if err == nil && len(s.Reads) == 0 {
			err = fmt.Errorf("no reads survived preprocessing")
		}
		return err
	}); err != nil {
		return nil, err
	}
	if err := step("overlap", func() error {
		subsets := cfg.Subsets
		if subsets <= 0 {
			subsets = 1
		}
		var err error
		s.Records, err = overlap.FindOverlapsCtx(ctx, s.Reads, subsets, cfg.Overlap)
		return err
	}); err != nil {
		return nil, err
	}
	if err := step("graph", func() error {
		var err error
		s.G0, err = overlap.BuildGraphParCtx(ctx, len(s.Reads), s.Records, cfg.GraphWorkers)
		return err
	}); err != nil {
		return nil, err
	}
	if err := step("coarsen", func() error {
		var err error
		s.MSet, err = coarsen.MultilevelCtx(ctx, s.G0, cfg.Coarsen)
		return err
	}); err != nil {
		return nil, err
	}
	if err := step("hybrid", func() error {
		var err error
		s.Hyb, err = hybrid.BuildCtx(ctx, s.MSet, s.Reads, s.Records, cfg.Hybrid)
		return err
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// BuildStagesOnPool is BuildStages with the read-alignment stage
// distributed over the worker pool (paper §II.B: subset pairs are sent to
// different processors), instead of local goroutines. Results are
// identical to BuildStages for the same configuration.
func BuildStagesOnPool(raw []Read, cfg Config, pool *dist.Pool) (*Stages, error) {
	cfg = cfg.applyGraphWorkers()
	ctx := cfg.Context
	s := &Stages{Cfg: cfg, Timings: map[string]time.Duration{}}
	t0 := time.Now()
	var err error
	s.Reads, s.PreStats, err = preprocess.Run(raw, cfg.Preprocess)
	s.Timings["preprocess"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: preprocess: %w", err)
	}
	if len(s.Reads) == 0 {
		return nil, fmt.Errorf("focus: preprocess: no reads survived")
	}
	subsets := cfg.Subsets
	if subsets <= 0 {
		subsets = 1
	}
	t0 = time.Now()
	s.Records, err = overlap.FindOverlapsDistributedCtx(ctx, pool, s.Reads, subsets, cfg.Overlap)
	s.Timings["overlap"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: overlap: %w", err)
	}
	t0 = time.Now()
	s.G0, err = overlap.BuildGraphParCtx(ctx, len(s.Reads), s.Records, cfg.GraphWorkers)
	s.Timings["graph"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: graph: %w", err)
	}
	t0 = time.Now()
	s.MSet, err = coarsen.MultilevelCtx(ctx, s.G0, cfg.Coarsen)
	s.Timings["coarsen"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: coarsen: %w", err)
	}
	t0 = time.Now()
	s.Hyb, err = hybrid.BuildCtx(ctx, s.MSet, s.Reads, s.Records, cfg.Hybrid)
	s.Timings["hybrid"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: hybrid: %w", err)
	}
	return s, nil
}

// BuildStagesFromRecords is BuildStages with the overlap-detection stage
// (the pipeline's dominant cost) replaced by precomputed records, e.g.
// loaded via graphio.ReadRecords. Preprocessing is deterministic, so the
// records saved from one run apply to a later run over the same input and
// config; numReads (from the record file) is validated against the
// preprocessed read count.
func BuildStagesFromRecords(raw []Read, records []overlap.Record, numReads int, cfg Config) (*Stages, error) {
	cfg = cfg.applyGraphWorkers()
	ctx := cfg.Context
	s := &Stages{Cfg: cfg, Timings: map[string]time.Duration{}}
	t0 := time.Now()
	var err error
	s.Reads, s.PreStats, err = preprocess.Run(raw, cfg.Preprocess)
	s.Timings["preprocess"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: preprocess: %w", err)
	}
	if len(s.Reads) != numReads {
		return nil, fmt.Errorf("focus: record file was built for %d reads, preprocessing produced %d (input or config changed)", numReads, len(s.Reads))
	}
	s.Records = records
	t0 = time.Now()
	s.G0, err = overlap.BuildGraphParCtx(ctx, len(s.Reads), s.Records, cfg.GraphWorkers)
	s.Timings["graph"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: graph: %w", err)
	}
	t0 = time.Now()
	s.MSet, err = coarsen.MultilevelCtx(ctx, s.G0, cfg.Coarsen)
	s.Timings["coarsen"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: coarsen: %w", err)
	}
	t0 = time.Now()
	s.Hyb, err = hybrid.BuildCtx(ctx, s.MSet, s.Reads, s.Records, cfg.Hybrid)
	s.Timings["hybrid"] = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("focus: hybrid: %w", err)
	}
	return s, nil
}

// PartitionHybrid partitions the hybrid graph set (the paper's
// knowledge-enriched scheme, §III) into k parts and returns the result
// with its wall-clock time.
func (s *Stages) PartitionHybrid(k, procs int, seed int64) (*partition.Result, time.Duration, error) {
	opt := partition.DefaultOptions(k)
	opt.Procs = procs
	opt.Seed = seed
	t0 := time.Now()
	res, err := partition.PartitionSetCtx(s.Cfg.Context, s.Hyb.Set, opt)
	return res, time.Since(t0), err
}

// PartitionMultilevel partitions the full multilevel graph set (the
// paper's naive baseline) into k parts.
func (s *Stages) PartitionMultilevel(k, procs int, seed int64) (*partition.Result, time.Duration, error) {
	opt := partition.DefaultOptions(k)
	opt.Procs = procs
	opt.Seed = seed
	t0 := time.Now()
	res, err := partition.PartitionSetCtx(s.Cfg.Context, s.MSet, opt)
	return res, time.Since(t0), err
}

// HybridCuts returns the edge cut of a hybrid partitioning measured on the
// hybrid graph G'0 and, after projection through the representatives, on
// the overlap graph G0 (Table II's two columns).
func (s *Stages) HybridCuts(res *partition.Result) (hybridCut, overlapCut int64) {
	hybridCut = partition.EdgeCut(s.Hyb.G, res.Labels())
	overlapCut = partition.EdgeCut(s.G0, s.ReadLabels(res))
	return hybridCut, overlapCut
}

// ReadLabels projects a hybrid partitioning onto the overlap graph nodes
// (= reads).
func (s *Stages) ReadLabels(res *partition.Result) []int32 {
	return partition.MapLabels(res.Labels(), s.Hyb.RepOf)
}

// AssemblyResult is the output of the distributed assembly phases.
type AssemblyResult struct {
	Contigs      [][]byte
	Stats        Stats
	Trim         TrimStats
	Paths        [][]int32
	Labels       []int32   // hybrid-node partition labels used
	Variants     []Variant // non-nil only when Config.CallVariants is set
	TrimTime     time.Duration
	TraverseTime time.Duration
	// TraverseTaskTimes are the measured per-partition traversal task
	// durations (trimming's are inside Trim.PhaseTaskTimes).
	TraverseTaskTimes []time.Duration
}

// SimTrimTime projects the measured per-partition trimming task times
// onto a pool of w workers (phases are barriers, tasks within a phase are
// scheduled LPT). It reproduces the paper's Fig. 6 runtime-vs-partitions
// behaviour on hosts with fewer cores than partitions.
func (r *AssemblyResult) SimTrimTime(w int) time.Duration {
	var total time.Duration
	for _, phase := range r.Trim.PhaseTaskTimes {
		total += metrics.Makespan(phase, w)
	}
	return total
}

// SimTraverseTime projects the per-partition traversal task times onto w
// workers.
func (r *AssemblyResult) SimTraverseTime(w int) time.Duration {
	return metrics.Makespan(r.TraverseTaskTimes, w)
}

// Assemble runs distributed trimming and traversal of the hybrid graph on
// the given worker pool with k partitions, and constructs contigs.
// The hybrid graph is rebuilt (not reused) so Assemble can be called
// repeatedly with different k on the same Stages.
//
// With Config.Checkpoint.Resume set, the assembly graph, partitioning and
// already-completed phases are restored from the newest valid checkpoint
// in Config.Checkpoint.Dir instead of being recomputed; the remaining
// phases run normally and the final output matches an uninterrupted run.
func (s *Stages) Assemble(pool *dist.Pool, k, procs int, seed int64) (*AssemblyResult, error) {
	var driver *assembly.Driver
	var labels []int32
	ck := s.Cfg.Checkpoint
	if ck.Dir != "" && ck.Job != "" {
		// Namespace ownership is checked before any checkpoint is read or
		// written: resuming another job's frames must fail loudly
		// (checkpoint.ErrNamespace), never produce a silently mixed graph.
		if err := checkpoint.Claim(ck.Dir, ck.Job); err != nil {
			return nil, fmt.Errorf("focus: checkpoint namespace: %w", err)
		}
	}
	if ck.Resume && ck.Dir != "" {
		cs, err := assembly.LoadLatestCheckpoint(ck.Dir)
		switch {
		case err == nil:
			driver, err = assembly.ResumeDriver(pool, cs, s.Cfg.Assembly)
			if err != nil {
				return nil, err
			}
			labels = cs.Labels
			k = cs.K
		case errors.Is(err, checkpoint.ErrNone):
			// Nothing to resume yet: fall through to a fresh run (the
			// normal first invocation with -resume always on).
		default:
			return nil, fmt.Errorf("focus: resume: %w", err)
		}
	}
	if driver == nil {
		dg, err := assembly.BuildDiGraph(s.Hyb, s.Records)
		if err != nil {
			return nil, fmt.Errorf("focus: digraph: %w", err)
		}
		if k == 1 {
			labels = make([]int32, dg.NumNodes())
		} else {
			res, _, err := s.PartitionHybrid(k, procs, seed)
			if err != nil {
				return nil, fmt.Errorf("focus: partition: %w", err)
			}
			labels = res.Labels()
		}
		driver, err = assembly.NewDriver(pool, dg, labels, k, s.Cfg.Assembly)
		if err != nil {
			return nil, err
		}
	}
	defer driver.Close() // releases worker-side state in stateful mode
	if ck.Dir != "" {
		driver.EnableCheckpoint(assembly.CheckpointConfig{Dir: ck.Dir, Every: ck.Every})
	}
	driver.SetContext(s.Cfg.Context)
	driver.SetMetrics(s.Cfg.Metrics)
	driver.SetCostModel(s.Cfg.PhaseCosts)
	if s.Cfg.Watchdog.Window > 0 {
		driver.EnableWatchdog(s.Cfg.Watchdog)
	}
	// fail finalizes an aborted run: an interrupted run (cancel, deadline,
	// stall) writes a best-effort checkpoint at the last completed phase
	// boundary so -resume can pick up where it stopped.
	fail := func(err error) (*AssemblyResult, error) {
		if IsInterrupted(err) {
			if cerr := driver.CheckpointNow(); cerr != nil {
				log.Printf("focus: %v", cerr)
			}
		}
		return nil, err
	}
	out := &AssemblyResult{Labels: labels}
	var err error
	t0 := time.Now()
	if s.Cfg.CallVariants {
		// Variants are read off the graph right after transitive
		// reduction: containment's false-positive-edge removal severs
		// allelic branches (their verification alignments fail at the
		// divergence) and error removal pops the surviving bubbles.
		if err := driver.TrimTransitive(&out.Trim); err != nil {
			return fail(err)
		}
		out.Variants, err = driver.CallVariants(s.Cfg.Variants)
		if err != nil {
			return fail(err)
		}
		if err := driver.TrimContainment(&out.Trim); err != nil {
			return fail(err)
		}
		err = driver.TrimErrors(&out.Trim)
	} else {
		out.Trim, err = driver.Trim()
	}
	out.TrimTime = time.Since(t0)
	if err != nil {
		return fail(err)
	}
	t0 = time.Now()
	out.Paths, out.TraverseTaskTimes, err = driver.TraverseTimed()
	out.TraverseTime = time.Since(t0)
	if err != nil {
		return fail(err)
	}
	out.Contigs = driver.BuildContigs(out.Paths)
	out.Stats = assembly.ComputeStats(out.Contigs)
	return out, nil
}

// Assemble is the one-call pipeline: preprocess, align, build graphs,
// partition into k, trim and traverse on `workers` in-process RPC
// workers, and return contigs.
func Assemble(raw []Read, cfg Config, k, workers int) (*AssemblyResult, *Stages, error) {
	ctx, stop := cfg.RunContext()
	defer stop()
	cfg.Context = ctx
	s, err := BuildStages(raw, cfg)
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	pool, err := dist.NewLocalPoolOpts(workers, assembly.NewService, cfg.Dist)
	if err != nil {
		return nil, nil, err
	}
	defer pool.Close()
	res, err := s.Assemble(pool, k, workers, 1)
	if err != nil {
		return nil, nil, err
	}
	return res, s, nil
}

// AssembleOnPool is Assemble against an externally managed pool (e.g. TCP
// workers started with cmd/focus-worker).
func AssembleOnPool(raw []Read, cfg Config, k int, pool *dist.Pool) (*AssemblyResult, *Stages, error) {
	ctx, stop := cfg.RunContext()
	defer stop()
	cfg.Context = ctx
	s, err := BuildStages(raw, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Assemble(pool, k, pool.Size(), 1)
	if err != nil {
		return nil, nil, err
	}
	return res, s, nil
}
