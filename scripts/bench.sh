#!/usr/bin/env bash
# Regenerates the committed benchmark artifacts (BENCH_graph.json,
# BENCH_align.json, BENCH_overlap.json, BENCH_phase.json,
# BENCH_wire.json) and runs the package
# micro-benchmarks, with a vet+gofmt guard in front so numbers are never
# published from a tree that wouldn't pass review. Set RACE_GATE=1 to
# additionally run the full robustness gate (scripts/race.sh) before
# benchmarking.
#
# After graphbench the fresh numbers are checked: every *_parallel probe
# must not be slower than its *_serial sibling (beyond BENCH_TOLERANCE,
# default 10%) — the adaptive governor exists precisely so "parallel"
# never loses to "serial" on any host, including single-CPU ones where
# both resolve to the same serial path. Set BENCH_ALLOW_REGRESSION=1 to
# downgrade a failure to a warning (e.g. on a noisy shared box). Drift
# against the committed BENCH_graph.json baseline is reported as info.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: go vet =="
go vet ./...

if [ "${RACE_GATE:-0}" = "1" ]; then
    echo "== guard: robustness gate (scripts/race.sh) =="
    FUZZTIME="${FUZZTIME:-10s}" "$(dirname "$0")/race.sh"
fi

echo "== guard: gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Committed baseline (if any) for the drift report, captured before
# graphbench overwrites the file in place.
baseline=$(git show HEAD:BENCH_graph.json 2>/dev/null || true)

echo "== graphbench (BENCH_graph.json) =="
go run ./cmd/focus-bench -exp graphbench

echo "== regression check: parallel vs serial =="
BENCH_BASELINE="$baseline" python3 - <<'EOF'
import json, os, sys

tol = float(os.environ.get("BENCH_TOLERANCE", "0.10"))
fresh = {e["name"]: e["ns_per_op"] for e in json.load(open("BENCH_graph.json"))}

bad = []
for name, ns in sorted(fresh.items()):
    if not name.endswith("_serial"):
        continue
    sibling = name[: -len("_serial")] + "_parallel"
    if sibling not in fresh:
        continue
    ratio = fresh[sibling] / ns
    mark = "FAIL" if ratio > 1 + tol else "ok"
    print(f"  {sibling:24s} {ratio:5.2f}x of {name} [{mark}]")
    if ratio > 1 + tol:
        bad.append((sibling, ratio))

base_raw = os.environ.get("BENCH_BASELINE", "")
if base_raw.strip():
    base = {e["name"]: e["ns_per_op"] for e in json.loads(base_raw)}
    for name in sorted(fresh):
        if name in base and base[name] > 0:
            drift = fresh[name] / base[name] - 1
            if abs(drift) >= 0.15:
                print(f"  note: {name} drifted {drift:+.0%} vs committed baseline")

if bad:
    msg = ", ".join(f"{n} ({r:.2f}x)" for n, r in bad)
    if os.environ.get("BENCH_ALLOW_REGRESSION", "0") == "1":
        print(f"WARNING: parallel slower than serial: {msg}")
    else:
        print(f"FAIL: parallel slower than serial: {msg}", file=sys.stderr)
        print("      (BENCH_ALLOW_REGRESSION=1 to override)", file=sys.stderr)
        sys.exit(1)
EOF

echo "== alignbench (BENCH_align.json) =="
go run ./cmd/focus-bench -exp alignbench

# Same spirit as the graph check: the bit-parallel kernel must not lose
# to the scalar one it replaced on the hot path — a regression here means
# kernel-selection plumbing (or per-item cancellation polling) grew
# overhead the governor can't hide.
echo "== regression check: bitparallel vs scalar =="
python3 - <<'EOF'
import json, os, sys

tol = float(os.environ.get("BENCH_TOLERANCE", "0.10"))
fresh = {e["name"]: e["ns_per_op"] for e in json.load(open("BENCH_align.json"))}

bad = []
for name, ns in sorted(fresh.items()):
    if not name.endswith("_scalar"):
        continue
    sibling = name[: -len("_scalar")] + "_bitparallel"
    if sibling not in fresh:
        continue
    ratio = fresh[sibling] / ns
    mark = "FAIL" if ratio > 1 + tol else "ok"
    print(f"  {sibling:24s} {ratio:5.2f}x of {name} [{mark}]")
    if ratio > 1 + tol:
        bad.append((sibling, ratio))

if bad:
    msg = ", ".join(f"{n} ({r:.2f}x)" for n, r in bad)
    if os.environ.get("BENCH_ALLOW_REGRESSION", "0") == "1":
        print(f"WARNING: bitparallel slower than scalar: {msg}")
    else:
        print(f"FAIL: bitparallel slower than scalar: {msg}", file=sys.stderr)
        print("      (BENCH_ALLOW_REGRESSION=1 to override)", file=sys.stderr)
        sys.exit(1)
EOF

echo "== overlapbench (BENCH_overlap.json) =="
go run ./cmd/focus-bench -exp overlapbench

# The SpGEMM engine's product is row-blocked over the par governor, so
# like the graph check its parallel probe must never lose to serial —
# and the candgen headline (spmat vs the k-mer-table probe path it
# competes with) is printed for the drift record.
echo "== regression check: spmat parallel vs serial =="
python3 - <<'EOF'
import json, os, sys

tol = float(os.environ.get("BENCH_TOLERANCE", "0.10"))
fresh = {e["name"]: e["ns_per_op"] for e in json.load(open("BENCH_overlap.json"))}

serial, parallel = fresh["overlap_spmat_serial"], fresh["overlap_spmat_parallel"]
ratio = parallel / serial
mark = "FAIL" if ratio > 1 + tol else "ok"
print(f"  overlap_spmat_parallel   {ratio:5.2f}x of overlap_spmat_serial [{mark}]")
print(f"  candgen speedup: {fresh['overlap_candgen_kmertable'] / fresh['overlap_candgen_spmat']:.2f}x (spmat vs kmertable)")
if ratio > 1 + tol:
    msg = f"overlap_spmat_parallel ({ratio:.2f}x)"
    if os.environ.get("BENCH_ALLOW_REGRESSION", "0") == "1":
        print(f"WARNING: parallel slower than serial: {msg}")
    else:
        print(f"FAIL: parallel slower than serial: {msg}", file=sys.stderr)
        print("      (BENCH_ALLOW_REGRESSION=1 to override)", file=sys.stderr)
        sys.exit(1)
EOF

echo "== phasebench (BENCH_phase.json) =="
go run ./cmd/focus-bench -exp phasebench

# The CSR graph-cleaning kernels are row-blocked over the same governor,
# so the combined-scan parallel probe must never lose to its serial
# sibling; the transitive-reduction headline (masked product vs the map
# walker it replaced) is printed for the drift record.
echo "== regression check: phase parallel vs serial =="
python3 - <<'EOF'
import json, os, sys

tol = float(os.environ.get("BENCH_TOLERANCE", "0.10"))
fresh = {e["name"]: e["ns_per_op"] for e in json.load(open("BENCH_phase.json"))}

serial, parallel = fresh["phase_serial"], fresh["phase_parallel"]
ratio = parallel / serial
mark = "FAIL" if ratio > 1 + tol else "ok"
print(f"  phase_parallel           {ratio:5.2f}x of phase_serial [{mark}]")
print(f"  transitive speedup: {fresh['phase_transitive_map'] / fresh['phase_transitive_csr']:.2f}x (csr vs map)")
if ratio > 1 + tol:
    msg = f"phase_parallel ({ratio:.2f}x)"
    if os.environ.get("BENCH_ALLOW_REGRESSION", "0") == "1":
        print(f"WARNING: parallel slower than serial: {msg}")
    else:
        print(f"FAIL: parallel slower than serial: {msg}", file=sys.stderr)
        print("      (BENCH_ALLOW_REGRESSION=1 to override)", file=sys.stderr)
        sys.exit(1)
EOF

echo "== wirebench (BENCH_wire.json) =="
go run ./cmd/focus-bench -exp wirebench

echo "== package micro-benchmarks =="
go test -run xxx -bench 'Pack|Unpack' -benchtime 200ms ./internal/dna/
go test -run xxx -bench 'LiveNeighbourQueries|SubgraphExtract' -benchtime 200ms ./internal/assembly/
go test -run xxx -bench 'BandedNWBitParallel|OverlapKernel' -benchtime 200ms ./internal/align/
go test -run xxx -bench 'Spmat|CandGen' -benchtime 200ms ./internal/spmat/ ./internal/overlap/

echo "ok"
