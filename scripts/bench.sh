#!/usr/bin/env bash
# Regenerates the committed benchmark artifacts (BENCH_graph.json,
# BENCH_wire.json) and runs the package micro-benchmarks, with a
# vet+gofmt guard in front so numbers are never published from a tree
# that wouldn't pass review. Set RACE_GATE=1 to additionally run the
# full robustness gate (scripts/race.sh) before benchmarking.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: go vet =="
go vet ./...

if [ "${RACE_GATE:-0}" = "1" ]; then
    echo "== guard: robustness gate (scripts/race.sh) =="
    FUZZTIME="${FUZZTIME:-10s}" "$(dirname "$0")/race.sh"
fi

echo "== guard: gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== graphbench (BENCH_graph.json) =="
go run ./cmd/focus-bench -exp graphbench

echo "== wirebench (BENCH_wire.json) =="
go run ./cmd/focus-bench -exp wirebench

echo "== package micro-benchmarks =="
go test -run xxx -bench 'Pack|Unpack' -benchtime 200ms ./internal/dna/
go test -run xxx -bench 'LiveNeighbourQueries|SubgraphExtract' -benchtime 200ms ./internal/assembly/

echo "ok"
