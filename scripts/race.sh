#!/usr/bin/env bash
# One-command robustness gate: the tier-1 race sweep over the
# concurrency-heavy packages, the wire-focused chaos suite under race,
# and a short native-fuzz smoke over every committed fuzz target (seeds
# plus FUZZTIME of coverage-guided exploration per target).
#
#   scripts/race.sh              # full gate (~a few minutes)
#   FUZZTIME=0 scripts/race.sh   # skip the fuzz smoke (seeds still run
#                                # as regular tests in the race sweep)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

# The adaptive governor (internal/par) keeps stage pools serial on a
# single-CPU host, which would silently skip every parallel code path in
# the sweep; pin GOMAXPROCS up so the pools actually fan out under race.
export GOMAXPROCS="${GOMAXPROCS:-4}"

echo "== guard: go vet =="
go vet ./...

echo "== race: tier-1 concurrency-heavy packages =="
go test -race \
    ./internal/dist/... ./internal/assembly/... ./internal/overlap/... \
    ./internal/graph/... ./internal/coarsen/... ./internal/hybrid/... \
    ./internal/partition/... ./internal/checkpoint/... \
    ./internal/align/... ./internal/par/... ./internal/spmat/... \
    ./internal/jobs/... ./internal/metrics/...

echo "== race: wire chaos sweep =="
go test -race -run Wire ./internal/dist/ ./internal/assembly/ ./internal/overlap/

# Cancellation sweep: cancel-at-arbitrary-points across both protocols,
# watchdog kick/escalate, phase budgets, pool Close/Kick lifecycles and
# the facade signal/deadline paths (the root package is not part of the
# tier-1 race list above, so the facade tests run here).
echo "== race: cancellation chaos sweep =="
go test -race -run 'Cancel|Watchdog|Budget|Kick|Gate|Close|Deadline' \
    ./ ./internal/dist/ ./internal/assembly/ ./internal/par/

# Multi-tenant sweep: the resident master's admission, lifecycle and
# fault-isolation scenarios (including the headline multi-worker chaos
# run) under race, alongside the dist/assembly tests they lean on.
echo "== race: multi-tenant sweep =="
go test -race -run 'Job|Admission|Tenant' \
    ./internal/jobs/ ./internal/dist/ ./internal/assembly/

if [ "$FUZZTIME" != "0" ]; then
    # -fuzz takes exactly one target per invocation.
    fuzz() {
        local pkg="$1" target="$2"
        echo "== fuzz: $pkg $target ($FUZZTIME) =="
        go test -run "^${target}\$" -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
    }
    fuzz ./internal/dist/ FuzzWireReader
    fuzz ./internal/dist/ FuzzReadFrame
    fuzz ./internal/assembly/ FuzzWireDecoders
    fuzz ./internal/assembly/ FuzzPhaseEngines
    fuzz ./internal/overlap/ FuzzWireDecoders
    fuzz ./internal/checkpoint/ FuzzDecode
    fuzz ./internal/align/ FuzzBitParallelNW
    fuzz ./internal/spmat/ FuzzCSRBuild
    fuzz ./internal/spmat/ FuzzCandDecode
    fuzz ./internal/jobs/ FuzzJobWire
fi

echo "ok"
